//===- tests/dist/DistTestUtil.h - Shared dist-test helpers ------*- C++ -*-===//
//
// Helpers the tests/dist/ binaries share: the small SPECfp fixture
// suite (plus an always-failing program, so failure records flow
// through every shard/merge path under test), temp-path plumbing, and
// a full bitwise serialization of a SuiteResult's deterministic fields
// — comparing two results by suiteResultKey() pins EVERY serde-visible
// field, not a hand-picked subset.
//
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_TESTS_DIST_DISTTESTUTIL_H
#define HCVLIW_TESTS_DIST_DISTTESTUTIL_H

#include "runtime/ResultSerde.h"
#include "runtime/SuiteRunner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>

namespace disttest {

/// Three real programs; with \p WithBroken a fourth empty one whose
/// run fails, so failure records ride through journals and merges.
inline std::vector<hcvliw::BenchmarkProgram> smallSuite(bool WithBroken) {
  std::vector<hcvliw::BenchmarkProgram> Programs;
  for (const char *Name : {"168.wupwise", "171.swim", "172.mgrid"})
    Programs.push_back(hcvliw::buildSpecFPProgram(Name));
  if (WithBroken) {
    hcvliw::BenchmarkProgram Broken;
    Broken.Name = "999.broken";
    Programs.push_back(Broken);
  }
  return Programs;
}

inline std::string tempPath(const std::string &Name) {
  std::string Path = ::testing::TempDir() + Name;
  std::remove(Path.c_str());
  return Path;
}

/// A fresh, EMPTY work directory under TempDir. Stale shard journals
/// from a previous test run would otherwise be resumed — turning real
/// shard runs into no-ops and invalidating attempt/retry assertions.
inline std::string tempDir(const std::string &Name) {
  std::string Path = ::testing::TempDir() + Name;
  std::error_code EC;
  std::filesystem::remove_all(Path, EC);
  ::mkdir(Path.c_str(), 0755);
  return Path;
}

inline std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

inline void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

/// Zeroes \p C's scheduler-effort / cache-effectiveness counters.
/// They reflect the session that computed the record (a structurally
/// repeated loop hits the cache only if an earlier program of the SAME
/// session warmed it), so they legitimately differ between a
/// single-process run, a shard's run, and a snapshot-warmed run. The
/// repo's determinism contract has always carved them out (see
/// tests/fault/JournalResumeTest expectBitIdentical and the
/// SessionSuiteTest pins); per-loop semantic outcomes (Loops[].ITNs,
/// TexecNs, Degraded) stay compared.
inline void clearEffortCounters(hcvliw::ConfigRunResult &C) {
  C.ScheduleHits = C.ScheduleMisses = 0;
  C.SchedPlacements = C.SchedEjections = 0;
  C.SchedBudgetUsed = C.SchedITSteps = 0;
  C.DegradedLoops = C.ColdReplays = 0;
  C.FlatPartitions = C.FallbackRational = 0;
}

/// Serializes every deterministic field of \p R (via the same serde
/// layer the journal uses, so doubles are hex-floats and Rationals
/// num/den — bit-exact). SuiteFailure::StageWallMs is wall time and
/// excluded by contract, as are the effort counters (see
/// clearEffortCounters).
inline std::string suiteResultKey(const hcvliw::SuiteResult &R) {
  std::string Key;
  for (size_t I = 0; I < R.Names.size(); ++I) {
    hcvliw::recio::Sink S;
    hcvliw::ProgramRunResult D = R.Details[I];
    clearEffortCounters(D.HetMeasured);
    clearEffortCounters(D.HomMeasured);
    hcvliw::serde::putResult(S, D);
    Key += "ok " + R.Names[I] + " " + S.line() + "\n";
  }
  for (const hcvliw::SuiteFailure &F : R.Failures) {
    hcvliw::recio::Sink S;
    hcvliw::serde::putFailure(S, F.Stage, F.Reason, /*StageWallMs=*/0.0);
    Key += "fail " + F.Program + " " + S.line() + "\n";
  }
  return Key;
}

inline void expectBitIdentical(const hcvliw::SuiteResult &A,
                               const hcvliw::SuiteResult &B) {
  ASSERT_EQ(A.Names, B.Names);
  ASSERT_EQ(A.Failures.size(), B.Failures.size());
  EXPECT_EQ(suiteResultKey(A), suiteResultKey(B));
}

} // namespace disttest

#endif // HCVLIW_TESTS_DIST_DISTTESTUTIL_H
