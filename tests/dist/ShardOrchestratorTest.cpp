//===- tests/dist/ShardOrchestratorTest.cpp - Crash-tolerant shards ---------===//
//
// The orchestrator contracts, scripted through an in-process
// ShardExecutor double (no fork, fully deterministic): a shard that
// crashes mid-append — leaving a torn journal tail — retries and the
// reassembled SuiteResult is bit-identical to single-process; a hung
// shard is killed at the deadline and retried the same way; exhausted
// attempts surface as Ok = false with the per-shard report filled,
// never an exception; backoff is an exact deterministic schedule; the
// dist.spawn / dist.merge fault sites drive those failure paths from a
// FaultPlan; and side-car cache snapshots merge into one warm-start
// snapshot.
//
//===----------------------------------------------------------------------===//

#include "DistTestUtil.h"

#include "dist/ShardOrchestrator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>

using namespace hcvliw;
using namespace disttest;

namespace {

/// Runs shard attempts in-process: a real SuiteRunner over the shard's
/// partition, journaling to Spec.JournalPath and resuming from it when
/// it already exists (exactly the child-process behavior), with two
/// script hooks — SkipRun simulates a hang killed at the deadline
/// (nothing executes), TearAfter simulates a crash mid-append (the run
/// completes, then the journal's tail is torn off mid-record).
class InProcessShardExecutor : public dist::ShardExecutor {
public:
  PipelineOptions Opts;
  std::vector<BenchmarkProgram> Programs;
  std::function<bool(const dist::ShardSpec &)> SkipRun;
  std::function<bool(const dist::ShardSpec &)> TearAfter;
  std::atomic<unsigned> Runs{0};

  Outcome runShard(const dist::ShardSpec &Spec, double) override {
    Outcome O;
    O.Spawned = true;
    if (SkipRun && SkipRun(Spec)) {
      O.TimedOut = true;
      O.Detail = "simulated hang; killed at deadline";
      return O;
    }
    ++Runs;
    try {
      Session S(Opts, 1);
      SuiteOptions SO;
      SO.ShardIndex = Spec.Index;
      SO.ShardCount = Spec.Count;
      SO.JournalPath = Spec.JournalPath;
      uint64_t Fp = suiteJournalFingerprint(Opts, Programs);
      std::optional<SuiteJournal> Existing =
          SuiteJournal::load(Spec.JournalPath, Fp);
      if (Existing)
        SO.ResumeFrom = &*Existing;
      SuiteRunner(S).run(Programs, SO);
      if (!Spec.CachePath.empty())
        S.saveCacheTo(Spec.CachePath);
    } catch (const std::exception &E) {
      O.Detail = E.what();
      return O;
    }
    if (TearAfter && TearAfter(Spec)) {
      // Crash-mid-append shape: keep the first record, cut into the
      // second. The retry must resume past record one, and the torn
      // bytes must not hide what it appends (CleanBytes truncation).
      std::string Bytes = slurp(Spec.JournalPath);
      size_t First = Bytes.find("begin ");
      size_t Second = Bytes.find("begin ", First + 1);
      EXPECT_NE(Second, std::string::npos) << "crash shard owns < 2";
      if (Second != std::string::npos)
        spit(Spec.JournalPath, Bytes.substr(0, Second + 20));
      O.Detail = "simulated crash mid-append";
      return O; // Spawned, not Exited0
    }
    O.Exited0 = true;
    return O;
  }
};

/// The shard (under \p N) that owns the most programs — the one worth
/// crashing, since it has a record to keep and a record to lose.
unsigned busiestShard(const std::vector<BenchmarkProgram> &Programs,
                      unsigned N) {
  std::vector<size_t> Count(N, 0);
  for (const BenchmarkProgram &P : Programs)
    ++Count[suiteShardOf(P.Name, N)];
  unsigned Best = 0;
  for (unsigned I = 1; I < N; ++I)
    if (Count[I] > Count[Best])
      Best = I;
  return Best;
}

SuiteResult singleProcessBaseline(
    const std::vector<BenchmarkProgram> &Programs) {
  Session S{PipelineOptions(), 2};
  return SuiteRunner(S).run(Programs);
}

// --- backoff ---------------------------------------------------------------

TEST(ShardBackoff, ExactDeterministicSchedule) {
  EXPECT_EQ(dist::shardBackoffMs(25, 1), 0u); // first attempt never waits
  EXPECT_EQ(dist::shardBackoffMs(25, 2), 25u);
  EXPECT_EQ(dist::shardBackoffMs(25, 3), 50u);
  EXPECT_EQ(dist::shardBackoffMs(25, 4), 100u);
  EXPECT_EQ(dist::shardBackoffMs(25, 40), 30000u); // clamped
  EXPECT_EQ(dist::shardBackoffMs(0, 5), 0u);
}

// --- crash / retry / bit-identity ------------------------------------------

TEST(ShardOrchestrator, CrashedShardRetriesToBitIdenticalResult) {
  std::vector<BenchmarkProgram> Programs = smallSuite(/*WithBroken=*/true);
  SuiteResult Single = singleProcessBaseline(Programs);
  unsigned Crash = busiestShard(Programs, 2);

  InProcessShardExecutor Exec;
  Exec.Programs = Programs;
  Exec.TearAfter = [&](const dist::ShardSpec &Spec) {
    return Spec.Index == Crash && Spec.Attempt == 1;
  };

  Session S{PipelineOptions(), 2};
  dist::ShardOrchestrator Orch(S, Exec);
  dist::OrchestratorOptions OO;
  OO.Shards = 2;
  OO.WorkDir = tempDir("orch_crash");
  OO.BackoffBaseMs = 1;
  dist::OrchestratorResult R = Orch.run(Programs, OO);

  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Shards[Crash].Attempts, 2u);
  EXPECT_EQ(R.Shards[1 - Crash].Attempts, 1u);
  EXPECT_TRUE(R.Shards[Crash].Ok);
  expectBitIdentical(Single, R.Result);
}

TEST(ShardOrchestrator, HungShardIsKilledAndRetried) {
  std::vector<BenchmarkProgram> Programs = smallSuite(/*WithBroken=*/false);
  SuiteResult Single = singleProcessBaseline(Programs);
  // Hang a shard that owns work — an ownerless shard is complete the
  // moment its (empty) partition is checked, retried or not.
  unsigned Hang = busiestShard(Programs, 2);

  InProcessShardExecutor Exec;
  Exec.Programs = Programs;
  Exec.SkipRun = [&](const dist::ShardSpec &Spec) {
    return Spec.Index == Hang && Spec.Attempt == 1;
  };

  Session S{PipelineOptions(), 2};
  dist::ShardOrchestrator Orch(S, Exec);
  dist::OrchestratorOptions OO;
  OO.Shards = 2;
  OO.WorkDir = tempDir("orch_hang");
  OO.BackoffBaseMs = 1;
  OO.ShardDeadlineMs = 60000;
  dist::OrchestratorResult R = Orch.run(Programs, OO);

  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Shards[Hang].TimedOut);
  EXPECT_EQ(R.Shards[Hang].Attempts, 2u);
  expectBitIdentical(Single, R.Result);
}

TEST(ShardOrchestrator, ExhaustedAttemptsSurfaceError) {
  std::vector<BenchmarkProgram> Programs = smallSuite(/*WithBroken=*/false);
  unsigned Hang = busiestShard(Programs, 2);

  InProcessShardExecutor Exec;
  Exec.Programs = Programs;
  Exec.SkipRun = [&](const dist::ShardSpec &Spec) {
    return Spec.Index == Hang;
  };

  Session S{PipelineOptions(), 2};
  dist::ShardOrchestrator Orch(S, Exec);
  dist::OrchestratorOptions OO;
  OO.Shards = 2;
  OO.MaxAttempts = 2;
  OO.WorkDir = tempDir("orch_giveup");
  OO.BackoffBaseMs = 1;
  dist::OrchestratorResult R = Orch.run(Programs, OO);

  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("shard " + std::to_string(Hang)),
            std::string::npos)
      << R.Error;
  EXPECT_EQ(R.Shards[Hang].Attempts, 2u);
  EXPECT_FALSE(R.Shards[Hang].Ok);
}

// --- fault-site driven failure paths ---------------------------------------

TEST(ShardOrchestrator, SpawnFaultRetriesDeterministically) {
  std::vector<BenchmarkProgram> Programs = smallSuite(/*WithBroken=*/false);
  SuiteResult Single = singleProcessBaseline(Programs);

  unsigned Victim = busiestShard(Programs, 2);
  InProcessShardExecutor Exec;
  Exec.Programs = Programs;

  Session S{PipelineOptions(), 2};
  auto Plan = fault::FaultPlan::parse("on dist.spawn ctx shard" +
                                      std::to_string(Victim) +
                                      " occurrence 1 throw");
  ASSERT_TRUE(Plan.has_value());
  S.faultInjector().arm(*Plan);

  dist::ShardOrchestrator Orch(S, Exec);
  dist::OrchestratorOptions OO;
  OO.Shards = 2;
  OO.WorkDir = tempDir("orch_spawnfault");
  OO.BackoffBaseMs = 1;
  dist::OrchestratorResult R = Orch.run(Programs, OO);

  ASSERT_TRUE(R.Ok) << R.Error;
  // Injected spawn failure, then retry.
  EXPECT_EQ(R.Shards[Victim].Attempts, 2u);
  EXPECT_EQ(R.Shards[1 - Victim].Attempts, 1u);
  expectBitIdentical(Single, R.Result);
}

TEST(ShardOrchestrator, MergeFaultSurfacesError) {
  std::vector<BenchmarkProgram> Programs = smallSuite(/*WithBroken=*/false);

  InProcessShardExecutor Exec;
  Exec.Programs = Programs;

  Session S{PipelineOptions(), 2};
  auto Plan = fault::FaultPlan::parse("on dist.merge occurrence 1 throw");
  ASSERT_TRUE(Plan.has_value());
  S.faultInjector().arm(*Plan);

  dist::ShardOrchestrator Orch(S, Exec);
  dist::OrchestratorOptions OO;
  OO.Shards = 2;
  OO.WorkDir = tempDir("orch_mergefault");
  OO.BackoffBaseMs = 1;
  dist::OrchestratorResult R = Orch.run(Programs, OO);

  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("merge failed"), std::string::npos) << R.Error;
  // Both shards had finished; the failure is merge-local.
  EXPECT_TRUE(R.Shards[0].Ok);
  EXPECT_TRUE(R.Shards[1].Ok);
}

// --- side-car cache merge ---------------------------------------------------

TEST(ShardOrchestrator, SideCarCachesMergeToOneWarmSnapshot) {
  std::vector<BenchmarkProgram> Programs = smallSuite(/*WithBroken=*/false);
  SuiteResult Single = singleProcessBaseline(Programs);

  InProcessShardExecutor Exec;
  Exec.Programs = Programs;

  Session S{PipelineOptions(), 2};
  dist::ShardOrchestrator Orch(S, Exec);
  dist::OrchestratorOptions OO;
  OO.Shards = 2;
  OO.WorkDir = tempDir("orch_cachemerge");
  OO.MergeCaches = true;
  dist::OrchestratorResult R = Orch.run(Programs, OO);

  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_FALSE(R.MergedCachePath.empty());
  EXPECT_EQ(R.CacheCorruptFrames, 0u);

  // The merged snapshot warms a fresh session: same results, and the
  // persistent tier actually serves hits.
  Session Warm{PipelineOptions(), 2};
  std::string Err;
  ASSERT_TRUE(Warm.loadCacheFrom(R.MergedCachePath, &Err)) << Err;
  EXPECT_GT(Warm.cachePersistLoadStats().loaded(), 0u);
  EXPECT_EQ(Warm.cachePersistLoadStats().CorruptFrames, 0u);
  SuiteResult WarmRun = SuiteRunner(Warm).run(Programs);
  expectBitIdentical(Single, WarmRun);
  EXPECT_GT(Warm.cachePersistHits(), 0u);
}

} // namespace
