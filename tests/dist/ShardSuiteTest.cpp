//===- tests/dist/ShardSuiteTest.cpp - Deterministic suite sharding ---------===//
//
// The SuiteRunner sharding contracts: suiteShardOf is a pure, stable
// partition of program names for any shard count; a shard run executes
// (and journals) exactly the programs it owns; and the headline
// contract — the union of N shard journals, reassembled through the
// resume path, is bit-identical to the single-process SuiteResult for
// N in {1, 2, 3}, failure records included.
//
//===----------------------------------------------------------------------===//

#include "DistTestUtil.h"

#include "runtime/SuiteJournal.h"
#include "runtime/SuiteRunner.h"

#include <gtest/gtest.h>

#include <set>

using namespace hcvliw;
using namespace disttest;

namespace {

// --- partition function ----------------------------------------------------

TEST(SuiteShardOf, StableInRangePartition) {
  std::vector<std::string> Names;
  for (const BenchmarkProgram &P : buildSpecFPSuite())
    Names.push_back(P.Name);
  ASSERT_GE(Names.size(), 3u);

  for (unsigned N = 1; N <= 5; ++N) {
    std::set<unsigned> Used;
    for (const std::string &Name : Names) {
      unsigned Shard = suiteShardOf(Name, N);
      EXPECT_LT(Shard, N) << Name;
      EXPECT_EQ(Shard, suiteShardOf(Name, N)) << Name; // pure
      Used.insert(Shard);
    }
    if (N == 1)
      EXPECT_EQ(Used, std::set<unsigned>{0u});
    else
      // The ten-program suite spreads over more than one shard —
      // deterministic, so this pins the hash is not degenerate.
      EXPECT_GT(Used.size(), 1u) << "N=" << N;
  }

  // Ownership depends only on (name, count): renaming one program
  // never moves another.
  EXPECT_EQ(suiteShardOf("171.swim", 3), suiteShardOf("171.swim", 3));
  EXPECT_NE(suiteShardOf("171.swim", 1), 1u);
}

TEST(SuiteShard, InvalidShardIndexThrows) {
  std::vector<BenchmarkProgram> One;
  One.push_back(buildSpecFPProgram("171.swim"));
  Session S{PipelineOptions(), 1};
  SuiteOptions SO;
  SO.ShardIndex = 2;
  SO.ShardCount = 2;
  EXPECT_THROW(SuiteRunner(S).run(One, SO), std::runtime_error);
}

// --- one shard runs (and journals) exactly its partition -------------------

TEST(SuiteShard, ShardRunsOnlyOwnedPrograms) {
  std::vector<BenchmarkProgram> Programs = smallSuite(/*WithBroken=*/true);
  const unsigned N = 2;

  for (unsigned Index = 0; Index < N; ++Index) {
    std::set<std::string> Owned;
    for (const BenchmarkProgram &P : Programs)
      if (suiteShardOf(P.Name, N) == Index)
        Owned.insert(P.Name);

    std::string Path =
        tempPath("shardsuite_owned_" + std::to_string(Index) + ".journal");
    Session S{PipelineOptions(), 1};
    SuiteOptions SO;
    SO.ShardIndex = Index;
    SO.ShardCount = N;
    SO.JournalPath = Path;
    size_t Streamed = 0;
    SO.OnProgramDone = [&](const SuiteProgress &P) {
      ++Streamed;
      EXPECT_EQ(P.Total, Owned.size()); // progress counts owned only
      EXPECT_EQ(Owned.count(P.Program), 1u) << P.Program;
    };
    SuiteResult R = SuiteRunner(S).run(Programs, SO);
    EXPECT_EQ(Streamed, Owned.size());
    EXPECT_EQ(R.numPrograms(), Owned.size());

    // The shard journal carries the FULL list's fingerprint and
    // exactly the owned programs' records.
    uint64_t Fp = suiteJournalFingerprint(PipelineOptions(), Programs);
    std::string Err;
    auto J = SuiteJournal::load(Path, Fp, &Err);
    ASSERT_TRUE(J.has_value()) << Err;
    EXPECT_EQ(J->numRecords(), Owned.size());
    for (const std::string &Name : Owned)
      EXPECT_TRUE(J->Results.count(Name) || J->Failures.count(Name)) << Name;
    std::remove(Path.c_str());
  }
}

// --- merged shards == single process ---------------------------------------

TEST(SuiteShard, MergedShardsBitIdenticalToSingleProcess) {
  std::vector<BenchmarkProgram> Programs = smallSuite(/*WithBroken=*/true);

  SuiteResult Single;
  {
    Session S{PipelineOptions(), 2};
    Single = SuiteRunner(S).run(Programs);
  }
  ASSERT_EQ(Single.Names.size(), 3u);
  ASSERT_EQ(Single.Failures.size(), 1u); // the broken program

  for (unsigned N : {1u, 2u, 3u}) {
    // Run every shard in its own session, journaling, then union the
    // journals and reassemble through the resume path — exactly what
    // the orchestrator does, minus processes.
    SuiteJournal Union;
    uint64_t Fp = suiteJournalFingerprint(PipelineOptions(), Programs);
    Union.Fingerprint = Fp;
    std::vector<std::string> Paths;
    for (unsigned Index = 0; Index < N; ++Index) {
      std::string Path = tempPath("shardsuite_merge_" + std::to_string(N) +
                                  "_" + std::to_string(Index) + ".journal");
      Paths.push_back(Path);
      Session S{PipelineOptions(), 2};
      SuiteOptions SO;
      SO.ShardIndex = Index;
      SO.ShardCount = N;
      SO.JournalPath = Path;
      SuiteRunner(S).run(Programs, SO);

      std::string Err;
      auto J = SuiteJournal::load(Path, Fp, &Err);
      ASSERT_TRUE(J.has_value()) << Err;
      for (auto &KV : J->Results)
        Union.Results.emplace(KV.first, std::move(KV.second));
      for (auto &KV : J->Failures)
        Union.Failures.emplace(KV.first, std::move(KV.second));
    }
    ASSERT_EQ(Union.numRecords(), Programs.size()) << "N=" << N;

    Session S{PipelineOptions(), 2};
    SuiteOptions SO;
    SO.ResumeFrom = &Union;
    SuiteResult Merged = SuiteRunner(S).run(Programs, SO);
    expectBitIdentical(Single, Merged);

    for (const std::string &Path : Paths)
      std::remove(Path.c_str());
  }
}

} // namespace
