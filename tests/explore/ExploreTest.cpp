//===- tests/explore/ExploreTest.cpp - Exploration engine tests -------------===//

#include "explore/ExplorationEngine.h"
#include "explore/ExplorationReport.h"
#include "profiling/Profiler.h"
#include "runtime/WorkerPool.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

struct Fixture {
  MachineDescription M = MachineDescription::paperDefault();
  ProgramProfile Profile;
  TechnologyModel Tech = TechnologyModel::paperDefault();

  explicit Fixture(std::vector<Loop> Loops) {
    Profiler Prof(M, 1e6);
    auto P = Prof.profileProgram("fixture", Loops);
    EXPECT_TRUE(P.has_value());
    Profile = std::move(*P);
  }

  EnergyModel energy() const {
    return EnergyModel(EnergyBreakdown(), Profile.Totals,
                       Profile.TexecRefNs, M.numClusters());
  }
};

std::vector<Loop> mixedLoops() {
  return {makeChainRecurrenceLoop("r1", 1, 2, 1, 4, 64, 0.7),
          makeStreamLoop("s1", 5, 64, 0.3)};
}

// --- Pareto dominance ------------------------------------------------------

ParetoPoint pt(double T, double E, double D, size_t I = 0) {
  ParetoPoint P;
  P.TexecNs = T;
  P.Energy = E;
  P.ED2 = D;
  P.Index = I;
  return P;
}

TEST(Pareto, DominanceIsStrictInAtLeastOneObjective) {
  EXPECT_TRUE(dominates(pt(1, 1, 1), pt(2, 2, 2)));
  EXPECT_TRUE(dominates(pt(1, 2, 2), pt(2, 2, 2)));
  EXPECT_FALSE(dominates(pt(2, 2, 2), pt(2, 2, 2))); // equal: neither
  EXPECT_FALSE(dominates(pt(1, 3, 1), pt(2, 2, 2))); // trade-off
  EXPECT_FALSE(dominates(pt(2, 2, 2), pt(1, 1, 1)));
}

TEST(Pareto, InsertRejectsDominatedAndEvictsDominated) {
  ParetoFrontier F;
  EXPECT_TRUE(F.insert(pt(2, 2, 2, 0)));
  EXPECT_FALSE(F.insert(pt(3, 3, 3, 1))); // dominated: rejected
  EXPECT_EQ(F.size(), 1u);
  EXPECT_TRUE(F.insert(pt(1, 3, 2.9, 2))); // trade-off: kept
  EXPECT_EQ(F.size(), 2u);
  EXPECT_TRUE(F.insert(pt(1, 1, 1, 3))); // dominates both: evicts
  EXPECT_EQ(F.size(), 1u);
  EXPECT_EQ(F.points().front().Index, 3u);
}

TEST(Pareto, EqualPointsCoexist) {
  ParetoFrontier F;
  EXPECT_TRUE(F.insert(pt(1, 1, 1, 0)));
  EXPECT_TRUE(F.insert(pt(1, 1, 1, 1)));
  EXPECT_EQ(F.size(), 2u);
}

TEST(Pareto, SortedByTexecIsDeterministic) {
  ParetoFrontier F;
  F.insert(pt(3, 1, 9, 0));
  F.insert(pt(1, 3, 3, 1));
  F.insert(pt(2, 2, 8, 2));
  auto S = F.sortedByTexec();
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0].Index, 1u);
  EXPECT_EQ(S[1].Index, 2u);
  EXPECT_EQ(S[2].Index, 0u);
}

// --- Engine ---------------------------------------------------------------

TEST(Engine, EnumerationOrderIsFastFactorMajor) {
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  DesignSpaceOptions Space = DesignSpaceOptions::paperDefault();
  ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                        FrequencyMenu::continuous(), Space);
  auto Grid = Eng.enumerate();
  ASSERT_EQ(Grid.size(), Space.numHeteroCandidates());
  size_t I = 0;
  for (const Rational &FF : Space.FastFactors)
    for (const Rational &SR : Space.SlowRatios) {
      EXPECT_EQ(Grid[I].FastFactor, FF);
      EXPECT_EQ(Grid[I].SlowRatio, SR);
      EXPECT_EQ(Grid[I].SlowPeriodNs, Grid[I].FastPeriodNs * SR);
      ++I;
    }
}

TEST(Engine, CachedEvaluationIsBitIdenticalToDirect) {
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                        FrequencyMenu::continuous(),
                        DesignSpaceOptions::paperDefault());
  ExploreOptions Cached, Direct;
  Cached.Threads = 1;
  Direct.Threads = 1;
  Direct.UseCache = false;
  auto RC = Eng.explore(Cached);
  auto RD = Eng.explore(Direct);
  ASSERT_EQ(RC.Candidates.size(), RD.Candidates.size());
  for (size_t I = 0; I < RC.Candidates.size(); ++I) {
    const SelectedDesign &A = RC.Candidates[I].Design;
    const SelectedDesign &B = RD.Candidates[I].Design;
    ASSERT_EQ(A.Valid, B.Valid);
    if (!A.Valid)
      continue;
    // Bit-identical, not approximately equal: the cache's rescaling is
    // exact Rational arithmetic plus the estimator's own expressions.
    EXPECT_EQ(A.EstTexecNs, B.EstTexecNs);
    EXPECT_EQ(A.EstEnergy, B.EstEnergy);
    EXPECT_EQ(A.EstED2, B.EstED2);
    EXPECT_EQ(A.Config.Clusters.front().Vdd, B.Config.Clusters.front().Vdd);
    EXPECT_EQ(A.Config.Clusters.back().Vdd, B.Config.Clusters.back().Vdd);
  }
  // Paper default has 5 fast factors x 4 ratios but only 4 distinct
  // frequency shapes per loop, so the cache must have been hit.
  EXPECT_GT(RC.Stats.CacheHits, 0u);
  EXPECT_LT(RC.Stats.CacheMisses, RC.Stats.CacheHits + RC.Stats.CacheMisses);
  EXPECT_EQ(RD.Stats.CacheHits, 0u);
}

TEST(Engine, SameFrontierForOneAndManyThreads) {
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                        FrequencyMenu::continuous(),
                        DesignSpaceOptions::paperDefault());
  ExploreOptions One, Many;
  One.Threads = 1;
  Many.Threads = 4;
  auto R1 = Eng.explore(One);
  auto RN = Eng.explore(Many);
  EXPECT_EQ(RN.Stats.ThreadsUsed, 4u);
  ASSERT_EQ(R1.Frontier.size(), RN.Frontier.size());
  EXPECT_EQ(R1.Frontier, RN.Frontier);
  ASSERT_TRUE(R1.Best.Valid && RN.Best.Valid);
  EXPECT_EQ(R1.Best.EstED2, RN.Best.EstED2);
  EXPECT_EQ(R1.Best.EstTexecNs, RN.Best.EstTexecNs);
  EXPECT_EQ(R1.Best.EstEnergy, RN.Best.EstEnergy);
  for (size_t I = 0; I < R1.Candidates.size(); ++I) {
    EXPECT_EQ(R1.Candidates[I].Design.Valid, RN.Candidates[I].Design.Valid);
    EXPECT_EQ(R1.Candidates[I].OnFrontier, RN.Candidates[I].OnFrontier);
    if (R1.Candidates[I].Design.Valid) {
      EXPECT_EQ(R1.Candidates[I].Design.EstED2,
                RN.Candidates[I].Design.EstED2);
    }
  }
}

TEST(Engine, BestIsOnFrontierAndFrontierIsNonDominated) {
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                        FrequencyMenu::continuous(),
                        DesignSpaceOptions::paperDefault());
  auto R = Eng.explore();
  ASSERT_TRUE(R.Best.Valid);
  ASSERT_FALSE(R.Frontier.empty());
  bool BestOnFrontier = false;
  for (size_t Idx : R.Frontier)
    if (R.Candidates[Idx].Design.EstED2 == R.Best.EstED2)
      BestOnFrontier = true;
  EXPECT_TRUE(BestOnFrontier);
  // Mutual non-dominance, and every non-frontier candidate dominated.
  auto toPoint = [&](size_t Idx) {
    const SelectedDesign &D = R.Candidates[Idx].Design;
    return pt(D.EstTexecNs, D.EstEnergy, D.EstED2, Idx);
  };
  for (size_t A : R.Frontier)
    for (size_t B : R.Frontier)
      EXPECT_FALSE(dominates(toPoint(A), toPoint(B)) && A != B);
  for (size_t I = 0; I < R.Candidates.size(); ++I) {
    if (!R.Candidates[I].Design.Valid || R.Candidates[I].OnFrontier)
      continue;
    bool Dominated = false;
    for (size_t A : R.Frontier)
      Dominated |= dominates(toPoint(A), toPoint(I));
    EXPECT_TRUE(Dominated) << "candidate " << I
                           << " off-frontier but undominated";
  }
  // Frontier is ordered by ascending Texec.
  for (size_t I = 1; I < R.Frontier.size(); ++I)
    EXPECT_LE(R.Candidates[R.Frontier[I - 1]].Design.EstTexecNs,
              R.Candidates[R.Frontier[I]].Design.EstTexecNs);
}

TEST(Engine, AllSlowAndAllFastShapesCacheExactly) {
  // Regression: with NumFastClusters=0 (all clusters slow) the slowest
  // cluster period is the slow one even when ratio < 1; the cache's
  // rescaling must match direct evaluation for these shapes too.
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  for (unsigned NumFast : {0u, 4u}) {
    DesignSpaceOptions Space = DesignSpaceOptions::paperDefault();
    Space.NumFastClusters = NumFast;
    Space.SlowRatios.push_back(Rational(9, 10)); // slow faster than fast
    ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                          FrequencyMenu::continuous(), Space);
    ExploreOptions Cached, Direct;
    Cached.Threads = 1;
    Direct.Threads = 1;
    Direct.UseCache = false;
    auto RC = Eng.explore(Cached);
    auto RD = Eng.explore(Direct);
    for (size_t I = 0; I < RC.Candidates.size(); ++I) {
      ASSERT_EQ(RC.Candidates[I].Design.Valid,
                RD.Candidates[I].Design.Valid);
      if (!RC.Candidates[I].Design.Valid)
        continue;
      EXPECT_EQ(RC.Candidates[I].Design.EstTexecNs,
                RD.Candidates[I].Design.EstTexecNs)
          << "NumFast=" << NumFast << " candidate " << I;
      EXPECT_EQ(RC.Candidates[I].Design.EstED2,
                RD.Candidates[I].Design.EstED2);
    }
  }
}

TEST(Engine, RelativeMenuIsAlsoCacheable) {
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                        FrequencyMenu::relativeLadder(8),
                        DesignSpaceOptions::paperDefault());
  ExploreOptions Cached, Direct;
  Cached.Threads = 1;
  Direct.Threads = 1;
  Direct.UseCache = false;
  auto RC = Eng.explore(Cached);
  auto RD = Eng.explore(Direct);
  for (size_t I = 0; I < RC.Candidates.size(); ++I) {
    ASSERT_EQ(RC.Candidates[I].Design.Valid, RD.Candidates[I].Design.Valid);
    if (RC.Candidates[I].Design.Valid) {
      EXPECT_EQ(RC.Candidates[I].Design.EstED2,
                RD.Candidates[I].Design.EstED2);
    }
  }
}

TEST(Engine, SharedPoolAndCacheAreBitIdenticalToPrivate) {
  // The Session substrate: a long-lived WorkerPool plus a shared
  // EvalCache threaded through explore() must reproduce the private
  // per-call setup exactly, and a second explore over the same grid
  // must be served entirely from the shared cache (zero new misses).
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                        FrequencyMenu::continuous(),
                        DesignSpaceOptions::paperDefault());
  auto Private = Eng.explore();

  WorkerPool Pool(4);
  EvalCache Shared(F.M, FrequencyMenu::continuous());
  ExploreOptions Opts;
  Opts.Pool = &Pool;
  Opts.SharedCache = &Shared;
  auto First = Eng.explore(Opts);
  EXPECT_EQ(First.Stats.ThreadsUsed, 4u);
  ASSERT_EQ(First.Candidates.size(), Private.Candidates.size());
  for (size_t I = 0; I < First.Candidates.size(); ++I) {
    ASSERT_EQ(First.Candidates[I].Design.Valid,
              Private.Candidates[I].Design.Valid);
    if (!First.Candidates[I].Design.Valid)
      continue;
    EXPECT_EQ(First.Candidates[I].Design.EstED2,
              Private.Candidates[I].Design.EstED2);
    EXPECT_EQ(First.Candidates[I].Design.EstTexecNs,
              Private.Candidates[I].Design.EstTexecNs);
    EXPECT_EQ(First.Candidates[I].Design.EstEnergy,
              Private.Candidates[I].Design.EstEnergy);
  }
  EXPECT_EQ(First.Frontier, Private.Frontier);
  // Stats report this explore's own calls, not the cache's lifetime
  // totals. Under concurrency two workers may race to first query a
  // key and both count a miss (duplicate computes are by-design), so
  // the split is only bounded, while the total is exact.
  EXPECT_EQ(First.Stats.CacheHits + First.Stats.CacheMisses,
            Private.Stats.CacheHits + Private.Stats.CacheMisses);
  EXPECT_GE(First.Stats.CacheMisses, Private.Stats.CacheMisses);
  EXPECT_GT(First.Stats.CacheHits, 0u);

  // A fully populated cache cannot miss: the second explore's stats
  // are deterministic for any thread count.
  auto Second = Eng.explore(Opts);
  EXPECT_EQ(Second.Stats.CacheMisses, 0u);
  EXPECT_GT(Second.Stats.CacheHits, 0u);
  EXPECT_EQ(Second.Best.EstED2, Private.Best.EstED2);
}

TEST(Engine, SharedCacheHitsAcrossStructurallyIdenticalPrograms) {
  // Two "programs" containing the same loop structures under different
  // names and weights share every timing entry: the second explore
  // sees zero misses through the loop-fingerprint keys.
  Fixture A({makeChainRecurrenceLoop("a_rec", 1, 2, 1, 4, 64, 0.7),
             makeStreamLoop("a_s", 5, 64, 0.3)});
  Fixture B({makeChainRecurrenceLoop("b_rec", 1, 2, 1, 4, 64, 0.2),
             makeStreamLoop("b_s", 5, 64, 0.8)});
  EnergyModel EA = A.energy(), EB = B.energy();
  EvalCache Shared(A.M, FrequencyMenu::continuous());
  ExploreOptions Opts;
  Opts.SharedCache = &Shared;

  ExplorationEngine EngA(A.Profile, A.M, EA, A.Tech,
                         FrequencyMenu::continuous(),
                         DesignSpaceOptions::paperDefault());
  auto RA = EngA.explore(Opts);
  ASSERT_TRUE(RA.Best.Valid);
  EXPECT_GT(RA.Stats.CacheMisses, 0u);

  // B's machine is a distinct object with equal structure: the cache
  // accepts it by value equality.
  ExplorationEngine EngB(B.Profile, B.M, EB, B.Tech,
                         FrequencyMenu::continuous(),
                         DesignSpaceOptions::paperDefault());
  auto RB = EngB.explore(Opts);
  ASSERT_TRUE(RB.Best.Valid);
  EXPECT_EQ(RB.Stats.CacheMisses, 0u)
      << "all loop structures were already cached by program A";
  EXPECT_GT(RB.Stats.CacheHits, 0u);
}

// --- Report ---------------------------------------------------------------

TEST(Report, CsvHasOneRowPerCandidatePlusHeader) {
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                        FrequencyMenu::continuous(),
                        DesignSpaceOptions::paperDefault());
  auto R = Eng.explore();
  ExplorationReport Rep("fixture", R);
  std::string Csv = Rep.csv();
  size_t Lines = 0;
  for (char C : Csv)
    Lines += C == '\n';
  EXPECT_EQ(Lines, R.Candidates.size() + 1);
  EXPECT_EQ(Csv.rfind("index,fast_factor,slow_ratio", 0), 0u);
}

TEST(Report, JsonMentionsStatsFrontierAndBest) {
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                        FrequencyMenu::continuous(),
                        DesignSpaceOptions::paperDefault());
  auto R = Eng.explore();
  ExplorationReport Rep("fixture", R);
  std::string Json = Rep.json();
  EXPECT_NE(Json.find("\"stats\""), std::string::npos);
  EXPECT_NE(Json.find("\"frontier\""), std::string::npos);
  EXPECT_NE(Json.find("\"best\""), std::string::npos);
  EXPECT_NE(Json.find("\"candidates\""), std::string::npos);
  EXPECT_NE(Json.find("\"program\": \"fixture\""), std::string::npos);
}

TEST(Report, WritesFiles) {
  Fixture F(mixedLoops());
  EnergyModel E = F.energy();
  ExplorationEngine Eng(F.Profile, F.M, E, F.Tech,
                        FrequencyMenu::continuous(),
                        DesignSpaceOptions::paperDefault());
  auto R = Eng.explore();
  ExplorationReport Rep("fixture", R);
  std::string Base = ::testing::TempDir();
  ASSERT_TRUE(Rep.writeCsv(Base + "explore_test.csv"));
  ASSERT_TRUE(Rep.writeJson(Base + "explore_test.json"));
  std::FILE *In = std::fopen((Base + "explore_test.csv").c_str(), "rb");
  ASSERT_NE(In, nullptr);
  std::fclose(In);
}

} // namespace
