//===- tests/fault/FaultPlanTest.cpp - Fault plan + injector units ----------===//
//
// The src/fault unit contracts: the plan grammar parses and str()
// round-trips exactly; malformed plans are rejected with an error; an
// armed injector fires at exact, replayable (site, context) occurrence
// counts — re-arming the same plan and replaying the same hit sequence
// reproduces the same injections; Prob rules are a pure function of
// (seed, site, context, count), not an RNG stream.
//
//===----------------------------------------------------------------------===//

#include "fault/Fault.h"

#include <gtest/gtest.h>

#include <new>

using namespace hcvliw::fault;

namespace {

// --- plan grammar ----------------------------------------------------------

TEST(FaultPlan, ParsesEveryRuleShape) {
  std::string Err;
  auto P = FaultPlan::parse("# chaos plan\n"
                            "seed 42\n"
                            "\n"
                            "on sched.place ctx 171.swim/loop2 occurrence 3 throw\n"
                            "on measure.config occurrence 1 badalloc\n"
                            "on part.coarsen every 2 degrade\n"
                            "on pool.job prob 25 throw\n",
                            &Err);
  ASSERT_TRUE(P.has_value()) << Err;
  EXPECT_EQ(P->Seed, 42u);
  ASSERT_EQ(P->Rules.size(), 4u);
  EXPECT_EQ(P->Rules[0].Site, "sched.place");
  EXPECT_EQ(P->Rules[0].Context, "171.swim/loop2");
  EXPECT_EQ(P->Rules[0].Trigger, FaultTrigger::Nth);
  EXPECT_EQ(P->Rules[0].N, 3u);
  EXPECT_EQ(P->Rules[0].Action, FaultAction::Throw);
  EXPECT_EQ(P->Rules[1].Action, FaultAction::BadAlloc);
  EXPECT_EQ(P->Rules[2].Trigger, FaultTrigger::Every);
  EXPECT_EQ(P->Rules[2].Action, FaultAction::Degrade);
  EXPECT_EQ(P->Rules[3].Trigger, FaultTrigger::Prob);
  EXPECT_EQ(P->Rules[3].N, 25u);
}

TEST(FaultPlan, StrRoundTripsExactly) {
  auto P = FaultPlan::parse("seed 7\n"
                            "on measure.loop ctx 172.mgrid/mg_rec every 2 degrade\n"
                            "on pool.job occurrence 1 throw\n");
  ASSERT_TRUE(P.has_value());
  std::string Canonical = P->str();
  auto Q = FaultPlan::parse(Canonical);
  ASSERT_TRUE(Q.has_value());
  EXPECT_EQ(Q->str(), Canonical); // fixed point: parse(str()) is exact
  EXPECT_EQ(Q->Seed, P->Seed);
  ASSERT_EQ(Q->Rules.size(), P->Rules.size());
  for (size_t I = 0; I < P->Rules.size(); ++I) {
    EXPECT_EQ(Q->Rules[I].Site, P->Rules[I].Site);
    EXPECT_EQ(Q->Rules[I].Context, P->Rules[I].Context);
    EXPECT_EQ(Q->Rules[I].Trigger, P->Rules[I].Trigger);
    EXPECT_EQ(Q->Rules[I].N, P->Rules[I].N);
    EXPECT_EQ(Q->Rules[I].Action, P->Rules[I].Action);
  }
}

TEST(FaultPlan, MalformedInputIsRejectedWithAnError) {
  for (const char *Bad : {
           "on\n",                              // missing everything
           "on sched.place occurrence 3\n",     // missing action
           "on sched.place sometimes 3 throw\n",// unknown trigger
           "on sched.place occurrence x throw\n", // non-numeric count
           "seed\n",                            // missing seed value
           "frobnicate 1\n",                    // unknown directive
       }) {
    std::string Err;
    EXPECT_FALSE(FaultPlan::parse(Bad, &Err).has_value()) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

TEST(FaultPlan, ParseFileReportsMissingFile) {
  std::string Err;
  EXPECT_FALSE(
      FaultPlan::parseFile("/nonexistent/fault.plan", &Err).has_value());
  EXPECT_FALSE(Err.empty());
}

#ifndef HCVLIW_NO_FAULT

// --- injector determinism --------------------------------------------------

/// Replays \p Hits calls against site/ctx, returning the 1-based hit
/// indices at which a FaultInjected escaped.
std::vector<unsigned> throwsAt(FaultInjector &Inj, const char *Site,
                               const char *Ctx, unsigned Hits) {
  std::vector<unsigned> Fired;
  for (unsigned I = 1; I <= Hits; ++I) {
    try {
      Inj.hit(Site, Ctx);
    } catch (const FaultInjected &) {
      Fired.push_back(I);
    }
  }
  return Fired;
}

TEST(FaultInjector, OccurrenceRuleFiresAtExactlyTheNthHit) {
  auto P = FaultPlan::parse("on sched.place ctx prog/loop occurrence 3 throw\n");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj;
  Inj.arm(*P);
  EXPECT_EQ(throwsAt(Inj, "sched.place", "prog/loop", 6),
            (std::vector<unsigned>{3}));
  // A different context is a different occurrence stream: untouched.
  EXPECT_EQ(throwsAt(Inj, "sched.place", "other/loop", 2).size(), 0u);
  EXPECT_EQ(Inj.injectedThrows(), 1u);
  EXPECT_EQ(Inj.totalInjected(), 1u);

  // Re-arming resets the occurrence counters: the replay is identical.
  Inj.arm(*P);
  EXPECT_EQ(throwsAt(Inj, "sched.place", "prog/loop", 6),
            (std::vector<unsigned>{3}));
}

TEST(FaultInjector, EveryRuleFiresPeriodically) {
  auto P = FaultPlan::parse("on measure.config every 2 throw\n");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj;
  Inj.arm(*P);
  EXPECT_EQ(throwsAt(Inj, "measure.config", "a", 6),
            (std::vector<unsigned>{2, 4, 6}));
  EXPECT_EQ(Inj.injectedThrows(), 3u);
}

TEST(FaultInjector, BadAllocRuleRaisesBadAlloc) {
  auto P = FaultPlan::parse("on measure.config occurrence 1 badalloc\n");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj;
  Inj.arm(*P);
  EXPECT_THROW(Inj.hit("measure.config", "171.swim"), std::bad_alloc);
  EXPECT_EQ(Inj.injectedBadAllocs(), 1u);
}

TEST(FaultInjector, DegradeRuleFiresOnlyAtDegradeSites) {
  auto P = FaultPlan::parse("on sched.warm every 1 degrade\n");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj;
  Inj.arm(*P);
  // At a throw-capable site the Degrade rule is skipped entirely.
  EXPECT_NO_THROW(Inj.hit("sched.warm", "p/l"));
  EXPECT_EQ(Inj.totalInjected(), 0u);
  // At a degrade site it fires.
  EXPECT_TRUE(Inj.shouldDegrade("sched.warm", "p/l"));
  EXPECT_EQ(Inj.injectedDegrades(), 1u);
}

TEST(FaultInjector, UnarmedInjectorIsInert) {
  FaultInjector Inj;
  EXPECT_FALSE(Inj.armed());
  EXPECT_NO_THROW(Inj.hit("pool.job", "x"));
  EXPECT_FALSE(Inj.shouldDegrade("measure.loop", "x"));
  EXPECT_EQ(Inj.totalInjected(), 0u);
  // The site macros consult nothing through a null pointer.
  FaultInjector *Null = nullptr;
  HCVLIW_FAULT_POINT(Null, "pool.job", "x");
  EXPECT_FALSE(HCVLIW_FAULT_DEGRADE(Null, "measure.loop", "x"));
}

TEST(FaultInjector, ProbRuleIsAPureFunctionOfSeedSiteContextCount) {
  auto P = FaultPlan::parse("seed 99\non pool.job prob 40 throw\n");
  ASSERT_TRUE(P.has_value());
  FaultInjector A, B;
  A.arm(*P);
  B.arm(*P);
  // Two injectors replaying the same hit stream fire identically —
  // there is no RNG stream to perturb, only the occurrence hash.
  auto FiredA = throwsAt(A, "pool.job", "171.swim", 50);
  auto FiredB = throwsAt(B, "pool.job", "171.swim", 50);
  EXPECT_EQ(FiredA, FiredB);
  EXPECT_FALSE(FiredA.empty()); // 40% of 50 hits: some must fire
  EXPECT_LT(FiredA.size(), 50u);

  // Interleaving an unrelated context between hits must not shift the
  // firing pattern (counts are per (site, context), not global).
  FaultInjector C;
  C.arm(*P);
  std::vector<unsigned> FiredC;
  for (unsigned I = 1; I <= 50; ++I) {
    try {
      C.hit("pool.job", "171.swim");
    } catch (const FaultInjected &) {
      FiredC.push_back(I);
    }
    try {
      C.hit("pool.job", "172.mgrid");
    } catch (const FaultInjected &) {
    }
  }
  EXPECT_EQ(FiredC, FiredA);
}

TEST(FaultInjector, FirstMatchingRuleWinsAndBySiteReports) {
  auto P = FaultPlan::parse("on measure.config ctx 171.swim occurrence 1 badalloc\n"
                            "on measure.config occurrence 1 throw\n");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj;
  Inj.arm(*P);
  // The ctx-specific rule shadows the catch-all for its context.
  EXPECT_THROW(Inj.hit("measure.config", "171.swim"), std::bad_alloc);
  // The catch-all consults 172.mgrid's own stream: its first hit fires.
  EXPECT_THROW(Inj.hit("measure.config", "172.mgrid"), FaultInjected);
  auto BySite = Inj.injectedBySite();
  ASSERT_EQ(BySite.size(), 1u);
  EXPECT_EQ(BySite["measure.config"], 2u);
}

TEST(FaultInjector, FaultInjectedCarriesTheSite) {
  auto P = FaultPlan::parse("on pool.job occurrence 2 throw\n");
  ASSERT_TRUE(P.has_value());
  FaultInjector Inj;
  Inj.arm(*P);
  Inj.hit("pool.job", "171.swim");
  try {
    Inj.hit("pool.job", "171.swim");
    FAIL() << "occurrence 2 must fire";
  } catch (const FaultInjected &E) {
    EXPECT_EQ(E.site(), "pool.job");
    EXPECT_NE(std::string(E.what()).find("pool.job"), std::string::npos);
    EXPECT_NE(std::string(E.what()).find("171.swim"), std::string::npos);
  }
}

#endif // HCVLIW_NO_FAULT

} // namespace
