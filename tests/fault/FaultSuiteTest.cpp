//===- tests/fault/FaultSuiteTest.cpp - Containment + degradation ladder ----===//
//
// The PR 9 runtime contracts, end to end:
//
//   *Containment.* An injected worker-job throw surfaces as a
//   structured SuiteFailure naming the site — never a crash, never a
//   dropped program — and every *other* program's result stays
//   bit-identical to a clean run. The same plan and seed produce the
//   same failure records at Threads 1, 2 and 4 (armed runs bypass the
//   ScheduleCache, so occurrence counters advance identically).
//
//   *The degradation ladder.* Each rung is reachable by injection and
//   counted in the ConfigRunResult ledger: warm-sweep throws replay
//   cold (bit-identical — the warm/cold equivalence contract);
//   partitioner throws retry on the flat rung; measure.loop degrades
//   (and exhausted effort deadlines with DegradeToEstimate) land on the
//   analytic-estimate rung instead of failing the program.
//
//===----------------------------------------------------------------------===//

#include "runtime/SuiteRunner.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

#ifndef HCVLIW_NO_FAULT

namespace {

std::vector<BenchmarkProgram> smallSuite() {
  std::vector<BenchmarkProgram> Programs;
  for (const char *Name : {"168.wupwise", "171.swim", "172.mgrid"})
    Programs.push_back(buildSpecFPProgram(Name));
  return Programs;
}

fault::FaultPlan plan(const std::string &Text) {
  std::string Err;
  auto P = fault::FaultPlan::parse(Text, &Err);
  EXPECT_TRUE(P.has_value()) << Err;
  return *P;
}

/// The deterministic core of one program's result (everything but wall
/// times), compared bitwise.
void expectProgramIdentical(const ProgramRunResult &X,
                            const ProgramRunResult &Y) {
  EXPECT_EQ(X.Name, Y.Name);
  EXPECT_EQ(X.ED2Ratio, Y.ED2Ratio) << X.Name;
  EXPECT_EQ(X.HetDesign.EstED2, Y.HetDesign.EstED2) << X.Name;
  EXPECT_EQ(X.HomDesign.EstED2, Y.HomDesign.EstED2) << X.Name;
  EXPECT_EQ(X.HetMeasured.TexecNs, Y.HetMeasured.TexecNs) << X.Name;
  EXPECT_EQ(X.HetMeasured.Energy, Y.HetMeasured.Energy) << X.Name;
  EXPECT_EQ(X.HetMeasured.ED2, Y.HetMeasured.ED2) << X.Name;
  EXPECT_EQ(X.HomMeasured.ED2, Y.HomMeasured.ED2) << X.Name;
  ASSERT_EQ(X.HetMeasured.Loops.size(), Y.HetMeasured.Loops.size());
  for (size_t L = 0; L < X.HetMeasured.Loops.size(); ++L) {
    EXPECT_EQ(X.HetMeasured.Loops[L].ITNs, Y.HetMeasured.Loops[L].ITNs);
    EXPECT_EQ(X.HetMeasured.Loops[L].TexecNs,
              Y.HetMeasured.Loops[L].TexecNs);
    EXPECT_EQ(X.HetMeasured.Loops[L].Degraded,
              Y.HetMeasured.Loops[L].Degraded);
  }
}

// --- containment -----------------------------------------------------------

TEST(FaultContainment, InjectedThrowBecomesAStructuredFailure) {
  std::vector<BenchmarkProgram> Programs = smallSuite();

  SuiteResult Clean;
  {
    Session S{PipelineOptions(), 1};
    Clean = SuiteRunner(S).run(Programs);
  }
  ASSERT_EQ(Clean.Names.size(), 3u);
  ASSERT_TRUE(Clean.Failures.empty());

  Session S{PipelineOptions(), 2};
  S.faultInjector().arm(
      plan("seed 7\non pool.job ctx 171.swim occurrence 1 throw\n"));
  SuiteResult R = SuiteRunner(S).run(Programs);

  // The poisoned program is reported, not dropped and not a crash.
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Program, "171.swim");
  EXPECT_EQ(R.Failures[0].Stage, PipelineStage::Profiling);
  EXPECT_NE(R.Failures[0].Reason.find("pool.job"), std::string::npos)
      << R.Failures[0].Reason;
  EXPECT_EQ(S.faultInjector().injectedThrows(), 1u);

  // The healthy programs are bit-identical to the clean run.
  ASSERT_EQ(R.Details.size(), 2u);
  for (const ProgramRunResult &D : R.Details) {
    ASSERT_NE(D.Name, "171.swim");
    for (const ProgramRunResult &C : Clean.Details)
      if (C.Name == D.Name)
        expectProgramIdentical(C, D);
  }
  EXPECT_EQ(R.numPrograms(), 3u);
}

TEST(FaultContainment, SamePlanSameFailuresAtEveryThreadCount) {
  std::vector<BenchmarkProgram> Programs = smallSuite();
  const std::string Plan = "seed 3\n"
                           "on pool.job ctx 172.mgrid occurrence 1 badalloc\n"
                           "on measure.config ctx 168.wupwise occurrence 2 throw\n";

  SuiteResult Ref;
  {
    Session S{PipelineOptions(), 1};
    S.faultInjector().arm(plan(Plan));
    Ref = SuiteRunner(S).run(Programs);
  }
  ASSERT_EQ(Ref.Failures.size(), 2u);

  for (unsigned Threads : {2u, 4u}) {
    Session S{PipelineOptions(), Threads};
    S.faultInjector().arm(plan(Plan));
    SuiteResult R = SuiteRunner(S).run(Programs);
    ASSERT_EQ(R.Failures.size(), Ref.Failures.size()) << Threads;
    for (size_t I = 0; I < Ref.Failures.size(); ++I) {
      EXPECT_EQ(R.Failures[I].Program, Ref.Failures[I].Program);
      EXPECT_EQ(R.Failures[I].Stage, Ref.Failures[I].Stage);
      EXPECT_EQ(R.Failures[I].Reason, Ref.Failures[I].Reason);
    }
    ASSERT_EQ(R.Details.size(), Ref.Details.size());
    for (size_t I = 0; I < Ref.Details.size(); ++I)
      expectProgramIdentical(Ref.Details[I], R.Details[I]);
  }
}

// --- the degradation ladder ------------------------------------------------

TEST(FaultLadder, WarmSweepThrowDegradesToColdReplayBitIdentically) {
  BenchmarkProgram Prog = buildSpecFPProgram("171.swim");

  Session Clean{PipelineOptions(), 1};
  auto Ref = Clean.pipeline().runProgram(Prog);
  ASSERT_TRUE(Ref.has_value());

  // sched.warm is a *point* site on the warm path only: a throw there
  // is answered by the cold-replay rung, not a failure.
  Session S{PipelineOptions(), 1};
  S.faultInjector().arm(plan("on sched.warm every 1 throw\n"));
  auto R = S.pipeline().runProgram(Prog);
  ASSERT_TRUE(R.has_value());
  EXPECT_GT(R->HetMeasured.ColdReplays + R->HomMeasured.ColdReplays, 0u);
  EXPECT_GT(S.faultInjector().injectedThrows(), 0u);
  // The warm/cold equivalence contract: the replayed results are
  // bit-identical to the warm path.
  expectProgramIdentical(*Ref, *R);
  EXPECT_EQ(R->HetMeasured.DegradedLoops, 0u); // no analytic rung taken
}

TEST(FaultLadder, PartitionerDegradesToTheFlatRung) {
  Session S{PipelineOptions(), 1};
  S.faultInjector().arm(plan("on part.coarsen every 1 degrade\n"));
  auto R = S.pipeline().runProgram(buildSpecFPProgram("172.mgrid"));
  ASSERT_TRUE(R.has_value()); // the flat rung still partitions validly
  EXPECT_GT(R->HetMeasured.FlatPartitions + R->HomMeasured.FlatPartitions,
            0u);
  EXPECT_GT(R->ED2Ratio, 0.0);
}

TEST(FaultLadder, MeasureLoopDegradesToTheAnalyticEstimate) {
  Session S{PipelineOptions(), 1};
  S.faultInjector().arm(plan("on measure.loop every 1 degrade\n"));
  auto R = S.pipeline().runProgram(buildSpecFPProgram("168.wupwise"));
  ASSERT_TRUE(R.has_value());
  // Every loop of both measurements landed on the analytic rung.
  EXPECT_EQ(R->HetMeasured.DegradedLoops, R->HetMeasured.Loops.size());
  EXPECT_EQ(R->HomMeasured.DegradedLoops, R->HomMeasured.Loops.size());
  for (const LoopRunStat &L : R->HetMeasured.Loops)
    EXPECT_TRUE(L.Degraded) << L.Name;
  EXPECT_TRUE(R->HetMeasured.Ok); // degraded, not failed
  EXPECT_GT(R->ED2Ratio, 0.0);
}

TEST(FaultLadder, EffortDeadlineDegradesOnlyWithTheFallbackEnabled) {
  // 191.fma3d's borderline and wide-recurrence loops burn placement
  // budget across several IT steps (most SpecFP loops schedule at
  // their first IT, where the between-steps deadline check never
  // runs), so a 1-unit deadline exhausts exactly those loops.
  BenchmarkProgram Prog = buildSpecFPProgram("191.fma3d");

  // Without the fallback the exhausted loops count as measurement
  // failures, carried in the ledger with the deadline as the reason.
  PipelineOptions Strict;
  Strict.LoopEffortDeadline = 1;
  unsigned StrictFailures = 0;
  {
    Session S(Strict, 1);
    auto R = S.pipeline().runProgram(Prog);
    ASSERT_TRUE(R.has_value()); // partial failure is not a program failure
    StrictFailures = R->HetMeasured.Failures;
    EXPECT_GT(StrictFailures, 0u);
    ASSERT_FALSE(R->HetMeasured.FailureDetails.empty());
    EXPECT_NE(R->HetMeasured.FailureDetails[0].Detail.find(
                  "effort deadline exhausted"),
              std::string::npos)
        << R->HetMeasured.FailureDetails[0].Detail;
    EXPECT_EQ(R->HetMeasured.DegradedLoops, 0u);
  }

  // With the analytic-estimate rung enabled, the same deadline turns
  // every one of those failures into a flagged degraded loop.
  PipelineOptions Degrading = Strict;
  Degrading.DegradeToEstimate = true;
  {
    Session S(Degrading, 1);
    auto R = S.pipeline().runProgram(Prog);
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(R->HetMeasured.Failures, 0u);
    EXPECT_EQ(R->HetMeasured.DegradedLoops, StrictFailures);
    EXPECT_EQ(R->HetMeasured.Loops.size(), Prog.Loops.size());
    EXPECT_GT(R->ED2Ratio, 0.0);
  }
}

TEST(FaultLadder, DeadlineExhaustingEveryLoopFailsTheMeasurementStage) {
  // All-wide-recurrence program: every loop needs IT growth, so a
  // 1-unit deadline fails them all and the measurement stage reports a
  // structured error instead of blending a partial result.
  BenchmarkProgram Prog;
  Prog.Name = "900.recwall";
  Prog.Loops.push_back(makeWideRecurrenceLoop("rw_rec1", 8, 2, 2, 96, 0.5));
  Prog.Loops.push_back(makeWideRecurrenceLoop("rw_rec2", 10, 2, 2, 96, 0.5));

  PipelineOptions Strict;
  Strict.LoopEffortDeadline = 1;
  Session S(Strict, 1);
  PipelineError Err;
  auto R = S.pipeline().runProgram(Prog, &Err);
  EXPECT_FALSE(R.has_value());
  EXPECT_EQ(Err.Stage, PipelineStage::Measurement);
  EXPECT_NE(Err.Reason.find("unschedulable"), std::string::npos)
      << Err.Reason;

  // The degradation rung recovers the same program.
  PipelineOptions Degrading = Strict;
  Degrading.DegradeToEstimate = true;
  Session S2(Degrading, 1);
  auto R2 = S2.pipeline().runProgram(Prog);
  ASSERT_TRUE(R2.has_value());
  EXPECT_EQ(R2->HetMeasured.DegradedLoops, 2u);
}

// --- idle identity ----------------------------------------------------------

TEST(FaultIdle, ArmedPlanMatchingNothingChangesNothing) {
  BenchmarkProgram Prog = buildSpecFPProgram("172.mgrid");

  Session Clean{PipelineOptions(), 1};
  auto Ref = Clean.pipeline().runProgram(Prog);
  ASSERT_TRUE(Ref.has_value());

  // Armed, every site pays the full match() path; no rule ever fires
  // (the context matches no real program). Results must not move.
  Session S{PipelineOptions(), 1};
  S.faultInjector().arm(plan("on pool.job ctx no.such.program occurrence 1 throw\n"));
  auto R = S.pipeline().runProgram(Prog);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(S.faultInjector().totalInjected(), 0u);
  expectProgramIdentical(*Ref, *R);
}

} // namespace

#endif // HCVLIW_NO_FAULT
