//===- tests/fault/JournalResumeTest.cpp - Checkpoint / resume contracts ----===//
//
// The SuiteJournal durability contracts: every field of a journaled
// record round-trips bitwise (hex-float doubles, num/den Rationals); a
// torn trailing record — the shape a kill mid-append leaves — is
// dropped while everything before it loads; the fingerprint binds a
// journal to its (options, program list) identity and a resume under
// different options is refused; and the headline contract, a run
// journaled, killed and resumed merges to a SuiteResult bit-identical
// to the uninterrupted run.
//
//===----------------------------------------------------------------------===//

#include "runtime/SuiteJournal.h"
#include "runtime/SuiteRunner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace hcvliw;

namespace {

std::vector<BenchmarkProgram> smallSuite() {
  std::vector<BenchmarkProgram> Programs;
  for (const char *Name : {"168.wupwise", "171.swim", "172.mgrid"})
    Programs.push_back(buildSpecFPProgram(Name));
  return Programs;
}

std::string tempPath(const std::string &Name) {
  std::string Path = ::testing::TempDir() + Name;
  std::remove(Path.c_str());
  return Path;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

/// Bitwise equality of the deterministic fields of two suite results
/// (the same contract SessionSuiteTest pins for thread counts).
void expectBitIdentical(const SuiteResult &A, const SuiteResult &B) {
  ASSERT_EQ(A.Names, B.Names);
  ASSERT_EQ(A.ED2Ratios.size(), B.ED2Ratios.size());
  for (size_t I = 0; I < A.ED2Ratios.size(); ++I)
    EXPECT_EQ(A.ED2Ratios[I], B.ED2Ratios[I]) << A.Names[I];
  ASSERT_EQ(A.Failures.size(), B.Failures.size());
  for (size_t I = 0; I < A.Failures.size(); ++I) {
    EXPECT_EQ(A.Failures[I].Program, B.Failures[I].Program);
    EXPECT_EQ(A.Failures[I].Stage, B.Failures[I].Stage);
    EXPECT_EQ(A.Failures[I].Reason, B.Failures[I].Reason);
  }
  ASSERT_EQ(A.Details.size(), B.Details.size());
  for (size_t I = 0; I < A.Details.size(); ++I) {
    const ProgramRunResult &X = A.Details[I], &Y = B.Details[I];
    EXPECT_EQ(X.Name, Y.Name);
    EXPECT_EQ(X.ED2Ratio, Y.ED2Ratio) << X.Name;
    EXPECT_EQ(X.HetDesign.EstED2, Y.HetDesign.EstED2) << X.Name;
    EXPECT_EQ(X.HomDesign.EstED2, Y.HomDesign.EstED2) << X.Name;
    EXPECT_EQ(X.HetMeasured.TexecNs, Y.HetMeasured.TexecNs) << X.Name;
    EXPECT_EQ(X.HetMeasured.Energy, Y.HetMeasured.Energy) << X.Name;
    EXPECT_EQ(X.HetMeasured.ED2, Y.HetMeasured.ED2) << X.Name;
    EXPECT_EQ(X.HomMeasured.ED2, Y.HomMeasured.ED2) << X.Name;
    ASSERT_EQ(X.HetMeasured.Loops.size(), Y.HetMeasured.Loops.size());
    for (size_t L = 0; L < X.HetMeasured.Loops.size(); ++L) {
      EXPECT_EQ(X.HetMeasured.Loops[L].Name, Y.HetMeasured.Loops[L].Name);
      EXPECT_EQ(X.HetMeasured.Loops[L].ITNs, Y.HetMeasured.Loops[L].ITNs);
      EXPECT_EQ(X.HetMeasured.Loops[L].TexecNs,
                Y.HetMeasured.Loops[L].TexecNs);
    }
  }
}

// --- fingerprint -----------------------------------------------------------

TEST(SuiteJournalFingerprint, PureAndSensitive) {
  std::vector<BenchmarkProgram> Programs = smallSuite();
  PipelineOptions Opts;
  uint64_t A = suiteJournalFingerprint(Opts, Programs);
  EXPECT_EQ(A, suiteJournalFingerprint(Opts, Programs)); // pure

  // Any option the per-program computation reads moves it.
  PipelineOptions Tweaked = Opts;
  Tweaked.LoopEffortDeadline = 100000;
  EXPECT_NE(A, suiteJournalFingerprint(Tweaked, Programs));
  PipelineOptions Degrading = Opts;
  Degrading.DegradeToEstimate = true;
  EXPECT_NE(A, suiteJournalFingerprint(Degrading, Programs));

  // So does the program list — names and loop structure both.
  std::vector<BenchmarkProgram> Fewer(Programs.begin(), Programs.end() - 1);
  EXPECT_NE(A, suiteJournalFingerprint(Opts, Fewer));
  std::vector<BenchmarkProgram> Renamed = Programs;
  Renamed[0].Name = "999.other";
  EXPECT_NE(A, suiteJournalFingerprint(Opts, Renamed));
}

// --- record round-trip -----------------------------------------------------

TEST(SuiteJournal, RecordsRoundTripBitwise) {
  BenchmarkProgram Prog = buildSpecFPProgram("171.swim");
  Session S{PipelineOptions(), 1};
  auto R = S.pipeline().runProgram(Prog);
  ASSERT_TRUE(R.has_value());

  std::string Path = tempPath("journal_roundtrip.txt");
  {
    SuiteJournalWriter W;
    std::string Err;
    ASSERT_TRUE(W.open(Path, 0x1234, &Err)) << Err;
    W.append(*R);
    W.appendFailure("999.broken", PipelineStage::Selection,
                    "reason with spaces\nand a newline", 12.5);
  }

  std::string Err;
  auto J = SuiteJournal::load(Path, 0x1234, &Err);
  ASSERT_TRUE(J.has_value()) << Err;
  EXPECT_EQ(J->Fingerprint, 0x1234u);
  EXPECT_EQ(J->numRecords(), 2u);

  ASSERT_EQ(J->Results.count("171.swim"), 1u);
  const ProgramRunResult &L = J->Results.at("171.swim");
  EXPECT_EQ(L.ED2Ratio, R->ED2Ratio);
  EXPECT_EQ(L.HetDesign.EstTexecNs, R->HetDesign.EstTexecNs);
  EXPECT_EQ(L.HetDesign.EstED2, R->HetDesign.EstED2);
  EXPECT_EQ(L.HomDesign.EstED2, R->HomDesign.EstED2);
  ASSERT_EQ(L.HetDesign.Config.Clusters.size(),
            R->HetDesign.Config.Clusters.size());
  for (size_t C = 0; C < L.HetDesign.Config.Clusters.size(); ++C) {
    EXPECT_EQ(L.HetDesign.Config.Clusters[C].PeriodNs,
              R->HetDesign.Config.Clusters[C].PeriodNs); // exact Rational
    EXPECT_EQ(L.HetDesign.Config.Clusters[C].Vdd,
              R->HetDesign.Config.Clusters[C].Vdd); // exact double
  }
  EXPECT_EQ(L.HetMeasured.TexecNs, R->HetMeasured.TexecNs);
  EXPECT_EQ(L.HetMeasured.Energy, R->HetMeasured.Energy);
  EXPECT_EQ(L.HetMeasured.ED2, R->HetMeasured.ED2);
  EXPECT_EQ(L.HetMeasured.ScheduleMisses, R->HetMeasured.ScheduleMisses);
  EXPECT_EQ(L.HetMeasured.SchedPlacements, R->HetMeasured.SchedPlacements);
  EXPECT_EQ(L.HetMeasured.DegradedLoops, R->HetMeasured.DegradedLoops);
  ASSERT_EQ(L.HetMeasured.Loops.size(), R->HetMeasured.Loops.size());
  for (size_t I = 0; I < L.HetMeasured.Loops.size(); ++I) {
    EXPECT_EQ(L.HetMeasured.Loops[I].Name, R->HetMeasured.Loops[I].Name);
    EXPECT_EQ(L.HetMeasured.Loops[I].ITNs, R->HetMeasured.Loops[I].ITNs);
    EXPECT_EQ(L.HetMeasured.Loops[I].TexecNs,
              R->HetMeasured.Loops[I].TexecNs);
  }
  // Profile doubles (weights, reference rationals) round-trip too.
  ASSERT_EQ(L.Profile.Loops.size(), R->Profile.Loops.size());
  for (size_t I = 0; I < L.Profile.Loops.size(); ++I) {
    EXPECT_EQ(L.Profile.Loops[I].Weight, R->Profile.Loops[I].Weight);
    EXPECT_EQ(L.Profile.Loops[I].ItLengthRefNs,
              R->Profile.Loops[I].ItLengthRefNs);
  }

  ASSERT_EQ(J->Failures.count("999.broken"), 1u);
  const JournaledFailure &F = J->Failures.at("999.broken");
  EXPECT_EQ(F.Stage, PipelineStage::Selection);
  EXPECT_EQ(F.Reason, "reason with spaces\nand a newline"); // escaping
  EXPECT_EQ(F.StageWallMs, 12.5);

  std::remove(Path.c_str());
}

TEST(SuiteJournal, DuplicateRecordLaterWins) {
  Session S{PipelineOptions(), 1};
  auto R = S.pipeline().runProgram(buildSpecFPProgram("172.mgrid"));
  ASSERT_TRUE(R.has_value());

  std::string Path = tempPath("journal_dup.txt");
  {
    SuiteJournalWriter W;
    ASSERT_TRUE(W.open(Path, 1));
    W.append(*R);
    ProgramRunResult Amended = *R;
    Amended.ED2Ratio = 42.0;
    W.append(Amended);
  }
  auto J = SuiteJournal::load(Path, 1);
  ASSERT_TRUE(J.has_value());
  EXPECT_EQ(J->numRecords(), 1u);
  EXPECT_EQ(J->Results.at("172.mgrid").ED2Ratio, 42.0);
  std::remove(Path.c_str());
}

// --- torn records ----------------------------------------------------------

TEST(SuiteJournal, TornTrailingRecordIsDropped) {
  Session S{PipelineOptions(), 1};
  auto R1 = S.pipeline().runProgram(buildSpecFPProgram("168.wupwise"));
  auto R2 = S.pipeline().runProgram(buildSpecFPProgram("171.swim"));
  ASSERT_TRUE(R1.has_value() && R2.has_value());

  std::string Path = tempPath("journal_torn.txt");
  {
    SuiteJournalWriter W;
    ASSERT_TRUE(W.open(Path, 9));
    W.append(*R1);
    W.append(*R2);
  }
  std::string Bytes = slurp(Path);

  // Cut mid-way through the second record: the kill-mid-append shape.
  size_t Second = Bytes.find("begin ok 171.swim");
  ASSERT_NE(Second, std::string::npos);
  spit(Path, Bytes.substr(0, Second + 40));

  std::string Err;
  auto J = SuiteJournal::load(Path, 9, &Err);
  ASSERT_TRUE(J.has_value()) << Err;
  EXPECT_EQ(J->numRecords(), 1u); // the torn record is gone...
  EXPECT_EQ(J->Results.count("168.wupwise"), 1u); // ...the intact one loads
  std::remove(Path.c_str());
}

TEST(SuiteJournal, ReopenTruncatesTornTailBeforeAppending) {
  // A retry that appends after a torn tail must not hide its records
  // behind the tear: open() truncates to the intact prefix first, so
  // everything it appends is visible to every future load. (Before the
  // CleanBytes fix, appends landed after the torn bytes and were
  // silently dropped by the next load — fatal for shard crash-retry.)
  Session S{PipelineOptions(), 1};
  auto R1 = S.pipeline().runProgram(buildSpecFPProgram("168.wupwise"));
  auto R2 = S.pipeline().runProgram(buildSpecFPProgram("171.swim"));
  ASSERT_TRUE(R1.has_value() && R2.has_value());

  std::string Path = tempPath("journal_reopen.txt");
  {
    SuiteJournalWriter W;
    ASSERT_TRUE(W.open(Path, 7));
    W.append(*R1);
  }
  // Simulate a kill mid-append of a second record: intact first record
  // plus a torn fragment.
  spit(Path, slurp(Path) + "begin ok 171.swim\ntorn-frag");

  {
    SuiteJournalWriter W;
    std::string Err;
    ASSERT_TRUE(W.open(Path, 7, &Err)) << Err; // truncates the tear
    W.append(*R2);
  }
  std::string Err;
  auto J = SuiteJournal::load(Path, 7, &Err);
  ASSERT_TRUE(J.has_value()) << Err;
  EXPECT_EQ(J->numRecords(), 2u); // both records visible
  EXPECT_EQ(J->Results.count("168.wupwise"), 1u);
  EXPECT_EQ(J->Results.count("171.swim"), 1u);
  std::remove(Path.c_str());
}

TEST(SuiteJournal, MismatchedFingerprintRefusesToLoad) {
  std::string Path = tempPath("journal_fp.txt");
  {
    SuiteJournalWriter W;
    ASSERT_TRUE(W.open(Path, 0xaaaa));
  }
  std::string Err;
  EXPECT_FALSE(SuiteJournal::load(Path, 0xbbbb, &Err).has_value());
  EXPECT_NE(Err.find("fingerprint"), std::string::npos) << Err;
  // ExpectFingerprint 0 accepts any journal (inspection mode).
  EXPECT_TRUE(SuiteJournal::load(Path, 0).has_value());
  std::remove(Path.c_str());
}

// --- checkpoint / kill / resume --------------------------------------------

TEST(SuiteResume, KilledRunResumesBitIdentically) {
  std::vector<BenchmarkProgram> Programs = smallSuite();
  // A fourth, broken program pins failure records through the journal.
  BenchmarkProgram Broken;
  Broken.Name = "999.broken";
  Programs.push_back(Broken);

  SuiteResult Uninterrupted;
  {
    Session S{PipelineOptions(), 2};
    Uninterrupted = SuiteRunner(S).run(Programs);
  }
  ASSERT_EQ(Uninterrupted.Names.size(), 3u);
  ASSERT_EQ(Uninterrupted.Failures.size(), 1u);

  // Run once with a journal attached; every record lands in the file.
  std::string Path = tempPath("journal_resume.txt");
  {
    Session S{PipelineOptions(), 2};
    SuiteOptions SO;
    SO.JournalPath = Path;
    SuiteResult Full = SuiteRunner(S).run(Programs, SO);
    expectBitIdentical(Uninterrupted, Full);
  }

  // Simulate the kill: keep the header and the first record only.
  std::string Bytes = slurp(Path);
  size_t FirstBegin = Bytes.find("begin ");
  ASSERT_NE(FirstBegin, std::string::npos);
  size_t SecondBegin = Bytes.find("begin ", FirstBegin + 1);
  ASSERT_NE(SecondBegin, std::string::npos);
  spit(Path, Bytes.substr(0, SecondBegin));

  uint64_t Fp = suiteJournalFingerprint(PipelineOptions(), Programs);
  std::string Err;
  auto Partial = SuiteJournal::load(Path, Fp, &Err);
  ASSERT_TRUE(Partial.has_value()) << Err;
  ASSERT_EQ(Partial->numRecords(), 1u);

  // Resume: journaled work is spliced, the rest re-runs, and the
  // journal file ends up complete again.
  size_t Streamed = 0;
  {
    Session S{PipelineOptions(), 2};
    SuiteOptions SO;
    SO.JournalPath = Path;
    SO.ResumeFrom = &*Partial;
    SO.OnProgramDone = [&](const SuiteProgress &P) {
      ++Streamed;
      EXPECT_EQ(P.Total, 4u);
    };
    SuiteResult Resumed = SuiteRunner(S).run(Programs, SO);
    expectBitIdentical(Uninterrupted, Resumed);
  }
  EXPECT_EQ(Streamed, 4u); // prefilled programs stream too
  auto Final = SuiteJournal::load(Path, Fp);
  ASSERT_TRUE(Final.has_value());
  EXPECT_EQ(Final->numRecords(), 4u);
  std::remove(Path.c_str());
}

TEST(SuiteResume, ResumeUnderDifferentOptionsThrows) {
  std::vector<BenchmarkProgram> Programs = smallSuite();
  std::string Path = tempPath("journal_wrongopts.txt");
  {
    Session S{PipelineOptions(), 1};
    SuiteOptions SO;
    SO.JournalPath = Path;
    SuiteRunner(S).run(Programs, SO);
  }
  auto J = SuiteJournal::load(Path); // inspection mode: loads fine
  ASSERT_TRUE(J.has_value());

  PipelineOptions Other;
  Other.DegradeToEstimate = true; // a fingerprinted option
  Session S(Other, 1);
  SuiteOptions SO;
  SO.ResumeFrom = &*J;
  EXPECT_THROW(SuiteRunner(S).run(Programs, SO), std::runtime_error);
  std::remove(Path.c_str());
}

TEST(SuiteResume, JournalingUnderMeasureFrontierFailsFast) {
  // The frontier sweep is not journalable (results are not per-program
  // pure in the journal's schema). Combining it with checkpointing used
  // to be silently ignored — a user who asked for crash tolerance got
  // none. The contract is now fail-fast: Journal, Resume and sharding
  // all throw under MeasureFrontier.
  std::vector<BenchmarkProgram> One;
  One.push_back(buildSpecFPProgram("171.swim"));
  std::string Path = tempPath("journal_frontier.txt");
  Session S{PipelineOptions(), 1};
  {
    SuiteOptions SO;
    SO.MeasureFrontier = true;
    SO.JournalPath = Path;
    EXPECT_THROW(SuiteRunner(S).run(One, SO), std::runtime_error);
  }
  std::ifstream Probe(Path);
  EXPECT_FALSE(Probe.good()); // refused before any journal IO
  {
    SuiteJournal J;
    SuiteOptions SO;
    SO.MeasureFrontier = true;
    SO.ResumeFrom = &J;
    EXPECT_THROW(SuiteRunner(S).run(One, SO), std::runtime_error);
  }
  {
    SuiteOptions SO;
    SO.MeasureFrontier = true;
    SO.ShardIndex = 0;
    SO.ShardCount = 2;
    EXPECT_THROW(SuiteRunner(S).run(One, SO), std::runtime_error);
  }
  // Plain frontier runs are unaffected.
  SuiteOptions SO;
  SO.MeasureFrontier = true;
  SuiteResult R = SuiteRunner(S).run(One, SO);
  EXPECT_EQ(R.Names.size(), 1u);
  std::remove(Path.c_str());
}

} // namespace
