//===- tests/ir/DDGTest.cpp - Dependence graph construction -----------------===//

#include "ir/DDG.h"
#include "ir/LoopDSL.h"
#include "machine/IsaTable.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

// Finds an edge Src->Dst of the given kind; returns -1 when absent.
int findEdge(const DDG &G, unsigned Src, unsigned Dst, DepKind K) {
  for (unsigned E = 0; E < G.numEdges(); ++E)
    if (G.edge(E).Src == Src && G.edge(E).Dst == Dst && G.edge(E).Kind == K)
      return static_cast<int>(E);
  return -1;
}

TEST(DDG, RegisterFlowEdges) {
  Loop L = parseSingleLoop(R"(
loop t trip=4
  arrays A O
  x = load A
  y = fadd x x
  s = fadd s@2 y init=0
  store O s
endloop
)");
  DDG G = DDG::build(L);
  int E1 = findEdge(G, 0, 1, DepKind::Flow);
  ASSERT_GE(E1, 0);
  EXPECT_EQ(G.edge(static_cast<unsigned>(E1)).Distance, 0u);
  int Self = findEdge(G, 2, 2, DepKind::Flow);
  ASSERT_GE(Self, 0);
  EXPECT_EQ(G.edge(static_cast<unsigned>(Self)).Distance, 2u);
  EXPECT_GE(findEdge(G, 2, 3, DepKind::Flow), 0);
}

TEST(DDG, LoadLoadNoEdge) {
  Loop L = parseSingleLoop(R"(
loop t trip=4
  arrays A O
  x = load A
  y = load A off=1
  z = fadd x y
  store O z
endloop
)");
  DDG G = DDG::build(L);
  EXPECT_EQ(findEdge(G, 0, 1, DepKind::MemFlow), -1);
  EXPECT_EQ(findEdge(G, 0, 1, DepKind::MemAnti), -1);
  EXPECT_EQ(findEdge(G, 1, 0, DepKind::MemAnti), -1);
}

TEST(DDG, StoreLoadForwardDistance) {
  // store A[i+2]; load A[i]: the load of iteration n+2 reads the store
  // of iteration n: MemFlow store->load distance 2.
  Loop L = parseSingleLoop(R"(
loop t trip=8
  arrays A
  x = load A
  y = fadd x x
  store A y off=2
endloop
)");
  DDG G = DDG::build(L);
  int E = findEdge(G, 2, 0, DepKind::MemFlow);
  ASSERT_GE(E, 0);
  EXPECT_EQ(G.edge(static_cast<unsigned>(E)).Distance, 2u);
}

TEST(DDG, LoadBeforeStoreAnti) {
  // load A[i+1]; store A[i]: the store of iteration n+1 overwrites what
  // the load of iteration n read: MemAnti load->store distance 1.
  Loop L = parseSingleLoop(R"(
loop t trip=8
  arrays A
  x = load A off=1
  y = fadd x x
  store A y
endloop
)");
  DDG G = DDG::build(L);
  int E = findEdge(G, 0, 2, DepKind::MemAnti);
  ASSERT_GE(E, 0);
  EXPECT_EQ(G.edge(static_cast<unsigned>(E)).Distance, 1u);
}

TEST(DDG, SameAddressStoreStore) {
  Loop L = parseSingleLoop(R"(
loop t trip=8
  arrays A O
  x = load O
  store A x
  store A x
endloop
)");
  DDG G = DDG::build(L);
  // Same iteration: program order output dep at distance 0, plus the
  // loop-carried reverse at distance 1.
  int Fwd = findEdge(G, 1, 2, DepKind::MemOutput);
  int Bwd = findEdge(G, 2, 1, DepKind::MemOutput);
  ASSERT_GE(Fwd, 0);
  ASSERT_GE(Bwd, 0);
  EXPECT_EQ(G.edge(static_cast<unsigned>(Fwd)).Distance, 0u);
  EXPECT_EQ(G.edge(static_cast<unsigned>(Bwd)).Distance, 1u);
}

TEST(DDG, DisjointStridesNoAlias) {
  // Lane-split accesses: store A[2i], load A[2i+1] never collide.
  Loop L = parseSingleLoop(R"(
loop t trip=8
  arrays A O
  x = load A off=1 scale=2
  y = fadd x x
  store A y scale=2
endloop
)");
  DDG G = DDG::build(L);
  EXPECT_EQ(findEdge(G, 2, 0, DepKind::MemFlow), -1);
  EXPECT_EQ(findEdge(G, 0, 2, DepKind::MemAnti), -1);
}

TEST(DDG, MixedScalesConservative) {
  Loop L = parseSingleLoop(R"(
loop t trip=8
  arrays A O
  x = load A scale=2
  y = fadd x x
  store A y scale=3
endloop
)");
  DDG G = DDG::build(L);
  // Conservative serialization both ways.
  EXPECT_GE(findEdge(G, 0, 2, DepKind::MemAnti), 0);
  EXPECT_GE(findEdge(G, 2, 0, DepKind::MemFlow), 0);
}

TEST(DDG, EdgeLatencies) {
  Loop L = parseSingleLoop(R"(
loop t trip=8
  arrays A
  x = load A
  y = fmul x x
  store A y off=1
endloop
)");
  DDG G = DDG::build(L);
  IsaTable Isa;
  std::vector<unsigned> Lat = Isa.nodeLatencies(L);
  for (unsigned E = 0; E < G.numEdges(); ++E) {
    const DDG::Edge &Edge = G.edge(E);
    unsigned L2 = edgeLatency(Edge, Lat);
    if (Edge.Kind == DepKind::Flow || Edge.Kind == DepKind::MemFlow)
      EXPECT_EQ(L2, Lat[Edge.Src]);
    else
      EXPECT_EQ(L2, 1u);
  }
}

TEST(DDG, AdjacencyMatchesEdges) {
  Loop L = parseSingleLoop(R"(
loop t trip=4
  arrays A O
  x = load A
  y = fadd x x
  z = fmul y x
  store O z
endloop
)");
  DDG G = DDG::build(L);
  auto Adj = G.adjacency();
  unsigned Count = 0;
  for (const auto &Out : Adj)
    Count += static_cast<unsigned>(Out.size());
  EXPECT_EQ(Count, G.numEdges());
  for (unsigned N = 0; N < G.size(); ++N)
    EXPECT_EQ(G.outEdges(N).size(), Adj[N].size());
}

} // namespace
