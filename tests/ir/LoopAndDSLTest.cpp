//===- tests/ir/LoopAndDSLTest.cpp - Loop IR and DSL parser tests -----------===//

#include "ir/LoopBuilder.h"
#include "ir/LoopDSL.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

TEST(Opcode, Categories) {
  EXPECT_EQ(categoryOf(Opcode::Load), OpCategory::Memory);
  EXPECT_EQ(categoryOf(Opcode::FAdd), OpCategory::Arith);
  EXPECT_EQ(categoryOf(Opcode::IntMul), OpCategory::Mul);
  EXPECT_EQ(categoryOf(Opcode::FSqrt), OpCategory::Div);
  EXPECT_EQ(categoryOf(Opcode::Copy), OpCategory::Copy);
}

TEST(Opcode, FUMapping) {
  EXPECT_EQ(fuKindOf(Opcode::Load), FUKind::MemPort);
  EXPECT_EQ(fuKindOf(Opcode::Store), FUKind::MemPort);
  EXPECT_EQ(fuKindOf(Opcode::IntAdd), FUKind::IntFU);
  EXPECT_EQ(fuKindOf(Opcode::FDiv), FUKind::FpFU);
  EXPECT_EQ(fuKindOf(Opcode::Copy), FUKind::Bus);
}

TEST(Opcode, ParseNames) {
  EXPECT_EQ(parseOpcode("fadd"), Opcode::FAdd);
  EXPECT_EQ(parseOpcode("load"), Opcode::Load);
  EXPECT_FALSE(parseOpcode("copy").has_value());
  EXPECT_FALSE(parseOpcode("bogus").has_value());
  for (Opcode Op : {Opcode::IntAdd, Opcode::FMul, Opcode::Store})
    EXPECT_EQ(parseOpcode(opcodeName(Op)), Op);
}

TEST(Opcode, OperandCounts) {
  EXPECT_EQ(numOperandsOf(Opcode::Load), 0u);
  EXPECT_EQ(numOperandsOf(Opcode::Store), 1u);
  EXPECT_EQ(numOperandsOf(Opcode::FSqrt), 1u);
  EXPECT_EQ(numOperandsOf(Opcode::FAdd), 2u);
}

TEST(DSL, ParsesDotProduct) {
  ParsedLoops P = parseLoops(R"(
# comment line
loop dot trip=8 weight=2.5
  arrays A B S
  livein k = 1.5
  x = load A
  y = load B off=1 scale=2
  m = fmul x y
  s = fadd s@1 m init=3 step=0.5
  store S s
endloop
)");
  ASSERT_TRUE(P.ok()) << P.Error;
  ASSERT_EQ(P.Loops.size(), 1u);
  const Loop &L = P.Loops[0];
  EXPECT_EQ(L.Name, "dot");
  EXPECT_EQ(L.TripCount, 8u);
  EXPECT_DOUBLE_EQ(L.Weight, 2.5);
  EXPECT_EQ(L.size(), 5u);
  EXPECT_EQ(L.Arrays.size(), 3u);
  ASSERT_EQ(L.LiveIns.size(), 1u);
  EXPECT_DOUBLE_EQ(L.LiveIns[0].Value, 1.5);

  const Operation &Y = L.Ops[1];
  EXPECT_EQ(Y.Offset, 1);
  EXPECT_EQ(Y.IndexScale, 2);
  const Operation &S = L.Ops[3];
  ASSERT_EQ(S.Operands.size(), 2u);
  EXPECT_EQ(S.Operands[0].Kind, OperandKind::Def);
  EXPECT_EQ(S.Operands[0].Index, 3u);
  EXPECT_EQ(S.Operands[0].Distance, 1u);
  EXPECT_DOUBLE_EQ(S.InitValue, 3);
  EXPECT_DOUBLE_EQ(S.InitStep, 0.5);
}

TEST(DSL, ParsesMultipleLoops) {
  ParsedLoops P = parseLoops(R"(
loop a trip=2
  arrays X
  v = load X
  store X v off=1
endloop
loop b trip=3
  arrays Y
  w = load Y
  store Y w off=2
endloop
)");
  ASSERT_TRUE(P.ok()) << P.Error;
  EXPECT_EQ(P.Loops.size(), 2u);
  EXPECT_EQ(P.Loops[1].Name, "b");
}

TEST(DSL, ImmediateOperands) {
  Loop L = parseSingleLoop(R"(
loop imm trip=2
  arrays O
  v = fadd #1.5 #2.5
  store O v
endloop
)");
  EXPECT_EQ(L.Ops[0].Operands[0].Kind, OperandKind::Immediate);
  EXPECT_DOUBLE_EQ(L.Ops[0].Operands[0].Imm, 1.5);
}

TEST(DSL, ErrorsCarryLineNumbers) {
  ParsedLoops P = parseLoops("loop x trip=4\n  v = bogus a b\nendloop\n");
  EXPECT_FALSE(P.ok());
  EXPECT_NE(P.Error.find("line 2"), std::string::npos);
  EXPECT_NE(P.Error.find("bogus"), std::string::npos);
}

TEST(DSL, RejectsUnknownValue) {
  ParsedLoops P = parseLoops("loop x trip=4\n  arrays A\n  v = fadd q q\n"
                             "  store A v\nendloop\n");
  EXPECT_FALSE(P.ok());
  EXPECT_NE(P.Error.find("unknown value 'q'"), std::string::npos);
}

TEST(DSL, RejectsMissingEndloop) {
  ParsedLoops P = parseLoops("loop x trip=4\n  arrays A\n  v = load A\n");
  EXPECT_FALSE(P.ok());
  EXPECT_NE(P.Error.find("endloop"), std::string::npos);
}

TEST(DSL, RejectsRedefinition) {
  ParsedLoops P = parseLoops(
      "loop x trip=4\n  arrays A\n  v = load A\n  v = load A off=1\n"
      "  store A v\nendloop\n");
  EXPECT_FALSE(P.ok());
  EXPECT_NE(P.Error.find("redefinition"), std::string::npos);
}

TEST(DSL, RejectsWrongOperandCount) {
  ParsedLoops P = parseLoops(
      "loop x trip=4\n  arrays A\n  t = load A\n  v = fadd t\n"
      "  store A v\nendloop\n");
  EXPECT_FALSE(P.ok());
  EXPECT_NE(P.Error.find("wants 2 operands"), std::string::npos);
}

TEST(DSL, RejectsUnknownArray) {
  ParsedLoops P =
      parseLoops("loop x trip=4\n  v = load NOPE\n  store NOPE v\nendloop\n");
  EXPECT_FALSE(P.ok());
}

TEST(Loop, ValidateCatchesSameIterationForwardUse) {
  // op 0 uses op 1 at distance 0: invalid SSA order.
  Loop L;
  L.Name = "bad";
  L.TripCount = 4;
  L.Arrays = {"A"};
  Operation O1;
  O1.Op = Opcode::FAdd;
  O1.Name = "x";
  O1.Operands = {Operand::def(1, 0), Operand::imm(1)};
  Operation O2;
  O2.Op = Opcode::FAdd;
  O2.Name = "y";
  O2.Operands = {Operand::imm(1), Operand::imm(2)};
  L.Ops = {O1, O2};
  EXPECT_NE(L.validate().find("later def"), std::string::npos);
}

TEST(Loop, ValidateBackwardCarriedUseIsFine) {
  Loop L = parseSingleLoop(R"(
loop fwd trip=4
  arrays O
  x = fadd y@1 #1 init=0
  y = fadd x #1
  store O y
endloop
)");
  EXPECT_EQ(L.validate(), "");
}

TEST(Loop, StrRoundTripsThroughParser) {
  Loop L = parseSingleLoop(R"(
loop rt trip=16 weight=3
  arrays A S
  livein c = 2
  x = load A off=-1
  m = fmul x c
  s = fadd s@2 m init=1 step=2
  store S s
endloop
)");
  Loop L2 = parseSingleLoop(L.str());
  EXPECT_EQ(L2.Name, L.Name);
  EXPECT_EQ(L2.TripCount, L.TripCount);
  ASSERT_EQ(L2.size(), L.size());
  for (unsigned I = 0; I < L.size(); ++I) {
    EXPECT_EQ(L2.Ops[I].Op, L.Ops[I].Op);
    EXPECT_EQ(L2.Ops[I].Offset, L.Ops[I].Offset);
    EXPECT_DOUBLE_EQ(L2.Ops[I].InitValue, L.Ops[I].InitValue);
  }
}

TEST(Loop, OpCountsByFU) {
  Loop L = parseSingleLoop(R"(
loop counts trip=4
  arrays A O
  x = load A
  i = add x x
  f = fmul x x
  g = fdiv f x
  store O g
endloop
)");
  auto C = L.opCountsByFU();
  EXPECT_EQ(C[static_cast<unsigned>(FUKind::MemPort)], 2u);
  EXPECT_EQ(C[static_cast<unsigned>(FUKind::IntFU)], 1u);
  EXPECT_EQ(C[static_cast<unsigned>(FUKind::FpFU)], 2u);
  EXPECT_EQ(C[static_cast<unsigned>(FUKind::Bus)], 0u);
}

TEST(LoopBuilder, BuildsValidLoops) {
  LoopBuilder B("built", 8, 2.0);
  unsigned A = B.array("A");
  Operand K = B.liveIn("k", 3.0);
  unsigned X = B.load("x", A);
  unsigned M = B.op(Opcode::FMul, "m", Operand::def(X), K);
  unsigned S = B.unop(Opcode::FSqrt, "s", Operand::def(M));
  B.setInit(S, 1.0, 0.0);
  B.store(A, Operand::def(S), 1);
  Loop L = B.take();
  EXPECT_EQ(L.validate(), "");
  EXPECT_EQ(L.size(), 4u);
  EXPECT_EQ(L.findOp("m"), 1);
  EXPECT_EQ(L.findOp("nope"), -1);
  EXPECT_EQ(L.findLiveIn("k"), 0);
}

} // namespace
