//===- tests/ir/RecurrenceMinDistTest.cpp - recMII and MinDist --------------===//

#include "ir/LoopDSL.h"
#include "ir/MinDist.h"
#include "ir/RecurrenceAnalysis.h"
#include "machine/IsaTable.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

struct Analyzed {
  Loop L;
  DDG G;
  std::vector<unsigned> Lat;
  RecurrenceInfo Recs;
};

Analyzed analyze(const char *Src) {
  Analyzed A{parseSingleLoop(Src), DDG(), {}, {}};
  A.G = DDG::build(A.L);
  A.Lat = IsaTable().nodeLatencies(A.L);
  A.Recs = analyzeRecurrences(A.G, A.Lat);
  return A;
}

TEST(RecMII, AcyclicIsZero) {
  Analyzed A = analyze(R"(
loop t trip=4
  arrays A O
  x = load A
  y = fadd x x
  store O y
endloop
)");
  EXPECT_EQ(A.Recs.RecMII, 0);
  EXPECT_TRUE(A.Recs.Recurrences.empty());
}

TEST(RecMII, SelfAccumulator) {
  // s = fadd s@1 x: latency 3 over distance 1.
  Analyzed A = analyze(R"(
loop t trip=4
  arrays A O
  x = load A
  s = fadd s@1 x init=0
  store O s
endloop
)");
  EXPECT_EQ(A.Recs.RecMII, 3);
  ASSERT_EQ(A.Recs.Recurrences.size(), 1u);
  EXPECT_EQ(A.Recs.Recurrences[0].Nodes.size(), 1u);
}

TEST(RecMII, PaperFigure4Example) {
  // Three unit-latency ops in a distance-1 cycle: recMII = 3 (the
  // paper's Figure 4 uses exactly this shape).
  Analyzed A = analyze(R"(
loop t trip=4
  arrays O
  a = add c@1 #1 init=0
  b = add a #1
  c = add b #1
  d = add a #2
  e = add d #3
  store O e
endloop
)");
  EXPECT_EQ(A.Recs.RecMII, 3);
  ASSERT_EQ(A.Recs.Recurrences.size(), 1u);
  EXPECT_EQ(A.Recs.Recurrences[0].Nodes.size(), 3u);
}

TEST(RecMII, DistanceTwoHalves) {
  // fadd chain of 2 (latency 6) at distance 2: recMII = 3.
  Analyzed A = analyze(R"(
loop t trip=8
  arrays O
  a = fadd b@2 #1 init=0
  b = fadd a #1
  store O b
endloop
)");
  EXPECT_EQ(A.Recs.RecMII, 3);
}

TEST(RecMII, TakesMaxOverRecurrences) {
  Analyzed A = analyze(R"(
loop t trip=8
  arrays O P
  a = fadd a@1 #1 init=0
  b = fmul b@1 #2 init=1
  store O a
  store P b
endloop
)");
  // fadd self-cycle: 3; fmul self-cycle: 6.
  EXPECT_EQ(A.Recs.RecMII, 6);
  ASSERT_EQ(A.Recs.Recurrences.size(), 2u);
  // Sorted by criticality.
  EXPECT_GE(A.Recs.Recurrences[0].RecMII, A.Recs.Recurrences[1].RecMII);
  EXPECT_EQ(A.Recs.Recurrences[0].RecMII, 6);
}

TEST(RecMII, RecurrenceOfMapsNodes) {
  Analyzed A = analyze(R"(
loop t trip=8
  arrays O
  a = fadd a@1 #1 init=0
  x = fadd a #1
  store O x
endloop
)");
  EXPECT_EQ(A.Recs.RecurrenceOf[0], 0);
  EXPECT_EQ(A.Recs.RecurrenceOf[1], -1);
  EXPECT_EQ(A.Recs.RecurrenceOf[2], -1);
}

TEST(RecMII, MemoryCarriedRecurrence) {
  // store A[i+1]; load A[i]: MemFlow distance 1 (store lat 2) then load
  // (lat 2) feeds the chain back: cycle lat 2+2+3 over dist 1 = 7.
  Analyzed A = analyze(R"(
loop t trip=8
  arrays A
  x = load A
  y = fadd x #1
  store A y off=1
endloop
)");
  EXPECT_EQ(A.Recs.RecMII, 7);
}

TEST(MinDist, ChainDistances) {
  Analyzed A = analyze(R"(
loop t trip=4
  arrays A O
  x = load A
  y = fadd x x
  z = fmul y y
  store O z
endloop
)");
  MinDistMatrix M = MinDistMatrix::compute(A.G, A.Lat, 1);
  // load(2) -> fadd(3) -> fmul(6) -> store.
  EXPECT_EQ(M.at(0, 1), 2);
  EXPECT_EQ(M.at(0, 2), 5);
  EXPECT_EQ(M.at(0, 3), 11);
  EXPECT_FALSE(M.reaches(3, 0));
  EXPECT_EQ(M.height(0), 11);
  EXPECT_EQ(M.height(3), 0);
}

TEST(MinDist, IIReducesCarriedWeight) {
  Analyzed A = analyze(R"(
loop t trip=4
  arrays O
  a = fadd a@1 #1 init=0
  store O a
endloop
)");
  MinDistMatrix M3 = MinDistMatrix::compute(A.G, A.Lat, 3);
  // Self distance at II == recMII is exactly 0.
  EXPECT_EQ(M3.at(0, 0), 0);
  MinDistMatrix M5 = MinDistMatrix::compute(A.G, A.Lat, 5);
  EXPECT_EQ(M5.at(0, 0), -2);
}

TEST(MinDist, SlackShrinksAlongCriticalPath) {
  Analyzed A = analyze(R"(
loop t trip=4
  arrays A O
  x = load A
  y = fadd x x
  u = load A off=3
  store O y
endloop
)");
  MinDistMatrix M = MinDistMatrix::compute(A.G, A.Lat, 4);
  // x is on the critical path to y; u is independent of y.
  EXPECT_LT(M.slack(0, 1, 4), M.slack(2, 1, 4));
}

} // namespace
