//===- tests/ir/UnrollScheduleTest.cpp - Unroll x scheduler integration -----===//
//
// Section 5.3 end to end: unrolled loops must schedule on heterogeneous
// machines with restricted frequency menus, stay functionally exact,
// and amortize the synchronization-driven IT rounding.
//
//===----------------------------------------------------------------------===//

#include "ir/Unroll.h"
#include "partition/LoopScheduler.h"
#include "vliwsim/PipelinedSimulator.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

HeteroConfig menuConfig(const MachineDescription &M) {
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < 4; ++I)
    C.Clusters[I].PeriodNs = Rational(6, 5);
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);
  return C;
}

class UnrollScheduleTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(UnrollScheduleTest, SchedulesAndStaysExact) {
  auto [Factor, MenuK] = GetParam();
  Loop Base = makeChainRecurrenceLoop("acc", 0, 3, 1, 2, 96, 1.0);
  Loop L = unrollLoop(Base, Factor);

  MachineDescription M = MachineDescription::paperDefault();
  LoopScheduleOptions Opts;
  Opts.Menu = MenuK == 0 ? FrequencyMenu::continuous()
                         : FrequencyMenu::relativeLadder(MenuK);
  LoopScheduler Sched(M, menuConfig(M), Opts);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success) << "factor " << Factor << " menu " << MenuK
                         << ": " << R.Failure;
  EXPECT_EQ(validateSchedule(M, R.PG, R.Sched), "");
  EXPECT_EQ(checkFunctionalEquivalence(L, R.PG, R.Sched, M, L.TripCount),
            "");
  // The recurrence bound per original iteration is 9 cycles * 0.9 ns;
  // unrolling must never fall below it.
  double PerIter = R.Sched.Plan.ITNs.toDouble() / Factor;
  EXPECT_GE(PerIter, 8.1 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnrollScheduleTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u,
                                                              4u),
                                            ::testing::Values(0u, 4u, 8u)));

TEST(UnrollSchedule, UnrollingAmortizesMenuRounding) {
  Loop Base = makeChainRecurrenceLoop("acc", 0, 3, 1, 2, 96, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  LoopScheduleOptions Opts;
  Opts.Menu = FrequencyMenu::relativeLadder(4);
  LoopScheduler Sched(M, menuConfig(M), Opts);

  LoopScheduleResult R1 = Sched.schedule(Base);
  LoopScheduleResult R4 = Sched.schedule(unrollLoop(Base, 4));
  ASSERT_TRUE(R1.Success && R4.Success);
  double PerIter1 = R1.Sched.Plan.ITNs.toDouble();
  double PerIter4 = R4.Sched.Plan.ITNs.toDouble() / 4;
  EXPECT_LE(PerIter4, PerIter1 + 1e-9);
}

} // namespace
