//===- tests/ir/UnrollTest.cpp - Loop unrolling -----------------------------===//

#include "ir/LoopDSL.h"
#include "ir/RecurrenceAnalysis.h"
#include "ir/Unroll.h"
#include "machine/IsaTable.h"
#include "vliwsim/FunctionalSimulator.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

const char *AccumulatorSrc = R"(
loop acc trip=24
  arrays A S
  x = load A
  m = fmul x #1.01
  s = fadd s@1 m init=2 step=0.5
  store S s
endloop
)";

const char *StencilSrc = R"(
loop sten trip=24
  arrays A B
  x = load A off=-1
  y = load A off=1
  z = fadd x y
  store B z
endloop
)";

const char *CarriedMemorySrc = R"(
loop mem trip=24
  arrays A
  x = load A
  y = fadd x #0.25
  store A y off=3
endloop
)";

TEST(Unroll, FactorOneIsIdentity) {
  Loop L = parseSingleLoop(AccumulatorSrc);
  Loop U = unrollLoop(L, 1);
  EXPECT_EQ(U.size(), L.size());
  EXPECT_EQ(U.TripCount, L.TripCount);
}

TEST(Unroll, StructuralShape) {
  Loop L = parseSingleLoop(AccumulatorSrc);
  Loop U = unrollLoop(L, 3);
  EXPECT_EQ(U.size(), 3 * L.size());
  EXPECT_EQ(U.TripCount, L.TripCount / 3);
  EXPECT_EQ(U.validate(), "");
}

TEST(Unroll, CarriedDistanceRemapping) {
  Loop L = parseSingleLoop(AccumulatorSrc);
  Loop U = unrollLoop(L, 2);
  // s.0 (op 2) reads s.1 of the previous unrolled iteration; s.1 (op
  // 2 + 4) reads s.0 of the same unrolled iteration.
  const Operation &S0 = U.Ops[2];
  const Operation &S1 = U.Ops[2 + L.size()];
  EXPECT_EQ(S0.Operands[0].Index, 2 + L.size());
  EXPECT_EQ(S0.Operands[0].Distance, 1u);
  EXPECT_EQ(S1.Operands[0].Index, 2u);
  EXPECT_EQ(S1.Operands[0].Distance, 0u);
}

TEST(Unroll, RecMIIScalesWithFactor) {
  Loop L = parseSingleLoop(AccumulatorSrc);
  IsaTable Isa;
  for (unsigned U = 1; U <= 4; ++U) {
    Loop UL = unrollLoop(L, U);
    DDG G = DDG::build(UL);
    RecurrenceInfo R = analyzeRecurrences(G, Isa.nodeLatencies(UL));
    // One accumulator of latency 3 per copy, chained: recMII = 3 * U.
    EXPECT_EQ(R.RecMII, 3 * static_cast<int64_t>(U))
        << "unroll factor " << U;
  }
}

class UnrollEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<const char *, unsigned>> {};

TEST_P(UnrollEquivalenceTest, FunctionallyEquivalent) {
  auto [Src, Factor] = GetParam();
  Loop L = parseSingleLoop(Src);
  Loop U = unrollLoop(L, Factor);
  uint64_t N = U.TripCount * Factor; // original iterations covered

  FunctionalResult Orig = runFunctional(L, N);
  FunctionalResult Unrolled = runFunctional(U, U.TripCount);

  // Memory images may differ in size (margins); compare shared prefix.
  ASSERT_EQ(Orig.Memory.Arrays.size(), Unrolled.Memory.Arrays.size());
  for (size_t A = 0; A < Orig.Memory.Arrays.size(); ++A) {
    size_t Common = std::min(Orig.Memory.Arrays[A].size(),
                             Unrolled.Memory.Arrays[A].size());
    for (size_t K = 0; K < Common; ++K)
      ASSERT_EQ(Orig.Memory.Arrays[A][K], Unrolled.Memory.Arrays[A][K])
          << "array " << A << " element " << K;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UnrollEquivalenceTest,
    ::testing::Combine(::testing::Values(AccumulatorSrc, StencilSrc,
                                         CarriedMemorySrc),
                       ::testing::Values(2u, 3u, 4u)));

} // namespace
