//===- tests/lint/LintTest.cpp - hcvliw_lint rule + fixture tests -----------===//
//
// Every rule family is pinned twice: a clean fixture that exercises the
// sanctioned shape without firing, and a violating fixture that must
// fire with the expected rule id on the expected file. The final test
// runs the linter over the real tree — the same gate ctest registers as
// lint_tree — so the library sources cannot regress the contracts
// without failing here too.
//
// Fixture roots live under tests/lint/fixtures/<name>/ and are shaped
// like miniature repos (tools/lint/layers.conf + src/<dir>/...).
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace hcvliw::lint;

namespace {

std::string fixtureRoot(const std::string &Name) {
  return std::string(HCVLIW_LINT_FIXTURES) + "/" + Name;
}

LintResult runOn(const std::string &Fixture) {
  LintOptions Opts;
  Opts.Root = fixtureRoot(Fixture);
  return runLint(Opts);
}

size_t countRule(const LintResult &R, const std::string &Rule) {
  return static_cast<size_t>(
      std::count_if(R.Violations.begin(), R.Violations.end(),
                    [&](const Violation &V) { return V.Rule == Rule; }));
}

bool anyMessageContains(const LintResult &R, const std::string &Rule,
                        const std::string &Needle) {
  return std::any_of(R.Violations.begin(), R.Violations.end(),
                     [&](const Violation &V) {
                       return V.Rule == Rule &&
                              V.Message.find(Needle) != std::string::npos;
                     });
}

std::string dump(const LintResult &R) {
  std::string Out;
  for (const Violation &V : R.Violations)
    Out += V.File + ":" + std::to_string(V.Line) + ": [" + V.Rule + "] " +
           V.Message + "\n";
  for (const std::string &E : R.ConfigErrors)
    Out += "config error: " + E + "\n";
  return Out;
}

// --- lexer ----------------------------------------------------------------

TEST(LintLexer, StripsCommentsAndTracksLines) {
  auto Toks = tokenize("int A; // trailing\n/* block\n spanning */ int B;");
  ASSERT_EQ(Toks.size(), 6u);
  EXPECT_TRUE(Toks[0].ident("int"));
  EXPECT_EQ(Toks[1].Text, "A");
  EXPECT_EQ(Toks[1].Line, 1u);
  EXPECT_EQ(Toks[4].Text, "B");
  EXPECT_EQ(Toks[4].Line, 3u); // block comment advanced the line count
}

TEST(LintLexer, LiteralsDoNotLeakTokens) {
  // 'if (' inside a string or raw string must not look like a branch.
  auto Toks = tokenize("const char *S = \"if (obs::x)\";\n"
                       "const char *R = R\"(while (obs::y))\";");
  for (const Token &T : Toks) {
    EXPECT_FALSE(T.ident("if"));
    EXPECT_FALSE(T.ident("while"));
  }
}

TEST(LintLexer, TwoCharPunctuators) {
  auto Toks = tokenize("a::b == c && d -> e");
  std::vector<std::string> Puncts;
  for (const Token &T : Toks)
    if (T.K == Token::Punct)
      Puncts.push_back(T.Text);
  EXPECT_EQ(Puncts, (std::vector<std::string>{"::", "==", "&&", "->"}));
}

// --- layer rule -----------------------------------------------------------

TEST(LintLayers, CleanFixtureIsClean) {
  LintResult R = runOn("layer_clean");
  EXPECT_TRUE(R.clean()) << dump(R);
}

TEST(LintLayers, UpwardIncludeIsFlagged) {
  LintResult R = runOn("layer_violate");
  EXPECT_TRUE(R.ConfigErrors.empty()) << dump(R);
  ASSERT_EQ(R.Violations.size(), 1u) << dump(R);
  EXPECT_EQ(R.Violations[0].Rule, "layer");
  EXPECT_EQ(R.Violations[0].File, "src/support/Bad.h");
  EXPECT_NE(R.Violations[0].Message.find("higher layer"), std::string::npos);
}

TEST(LintLayers, UndeclaredSrcDirIsConfigError) {
  LintResult R = runOn("undeclared_dir");
  ASSERT_EQ(R.ConfigErrors.size(), 1u) << dump(R);
  EXPECT_NE(R.ConfigErrors[0].find("src/rogue"), std::string::npos);
  EXPECT_FALSE(R.clean());
}

// --- determinism rules ----------------------------------------------------

TEST(LintDeterminism, CleanFixtureIsClean) {
  LintResult R = runOn("det_clean");
  EXPECT_TRUE(R.clean()) << dump(R);
}

TEST(LintDeterminism, EveryFamilyFiresOnTheViolatingFixture) {
  LintResult R = runOn("det_violate");
  EXPECT_TRUE(R.ConfigErrors.empty()) << dump(R);
  EXPECT_EQ(countRule(R, "det-clock"), 1u) << dump(R);   // steady_clock
  EXPECT_EQ(countRule(R, "det-rand"), 2u) << dump(R);    // rand() + random_device
  EXPECT_EQ(countRule(R, "det-ptr-key"), 1u) << dump(R); // map<const Node*,..>
  EXPECT_EQ(countRule(R, "det-unordered-iter"), 1u) << dump(R);
  for (const Violation &V : R.Violations)
    EXPECT_EQ(V.File, "src/sched/Bad.cpp");
}

TEST(LintDeterminism, UnorderedIterMessageNamesTheWriteTarget) {
  LintResult R = runOn("det_violate");
  EXPECT_TRUE(anyMessageContains(R, "det-unordered-iter", "'Total'"))
      << dump(R);
}

// --- obs isolation --------------------------------------------------------

TEST(LintObs, CleanFixtureIsClean) {
  LintResult R = runOn("obs_clean");
  EXPECT_TRUE(R.clean()) << dump(R);
}

TEST(LintObs, ExportAndBranchAreFlagged) {
  LintResult R = runOn("obs_violate");
  EXPECT_EQ(countRule(R, "obs-export"), 1u) << dump(R);
  EXPECT_EQ(countRule(R, "obs-branch"), 1u) << dump(R);
  EXPECT_TRUE(anyMessageContains(R, "obs-export", "snapshot")) << dump(R);
}

// --- allowlist ------------------------------------------------------------

TEST(LintAllowlist, SuppressionPrintsJustificationAndStaleEntriesWarn) {
  LintOptions Opts;
  Opts.Root = fixtureRoot("obs_violate");
  Opts.AllowlistConf = fixtureRoot("obs_violate") + "/allow.conf";
  LintResult R = runLint(Opts);

  // The obs-branch violation is suppressed; obs-export survives.
  ASSERT_EQ(R.Violations.size(), 1u) << dump(R);
  EXPECT_EQ(R.Violations[0].Rule, "obs-export");
  ASSERT_EQ(R.Suppressed.size(), 1u);
  EXPECT_NE(R.Suppressed[0].find("justification is printed"),
            std::string::npos)
      << R.Suppressed[0];
  // The entry for a nonexistent file matched nothing -> stale warning.
  ASSERT_EQ(R.StaleAllow.size(), 1u);
  EXPECT_NE(R.StaleAllow[0].find("matched nothing"), std::string::npos);
}

TEST(LintAllowlist, MissingJustificationIsConfigError) {
  LintOptions Opts;
  Opts.Root = fixtureRoot("obs_violate");
  Opts.AllowlistConf = fixtureRoot("obs_violate") + "/bad_allow.conf";
  LintResult R = runLint(Opts);
  ASSERT_FALSE(R.ConfigErrors.empty());
  EXPECT_NE(R.ConfigErrors[0].find("justification mandatory"),
            std::string::npos)
      << R.ConfigErrors[0];
}

// --- cache keys -----------------------------------------------------------

TEST(LintCacheKey, CompleteKeyIsClean) {
  LintResult R = runOn("cachekey_clean");
  EXPECT_TRUE(R.clean()) << dump(R);
}

TEST(LintCacheKey, DriftedEqualsAndHashBothFlagged) {
  LintResult R = runOn("cachekey_violate");
  EXPECT_EQ(countRule(R, "cache-key"), 2u) << dump(R);
  // operator== misses Seed; the hash functor misses ConfigBits.
  EXPECT_TRUE(anyMessageContains(R, "cache-key", "{Seed}")) << dump(R);
  EXPECT_TRUE(anyMessageContains(R, "cache-key", "{ConfigBits}")) << dump(R);
}

// --- fault sites ----------------------------------------------------------

TEST(LintFaultSite, CleanFixtureIsClean) {
  LintResult R = runOn("faultsite_clean");
  EXPECT_TRUE(R.clean()) << dump(R);
}

TEST(LintFaultSite, EveryShapeFiresOnTheViolatingFixture) {
  LintResult R = runOn("faultsite_violate");
  EXPECT_TRUE(R.ConfigErrors.empty()) << dump(R);
  EXPECT_EQ(countRule(R, "fault-site"), 5u) << dump(R);
  // unregistered literal, kind mismatch, duplicate location,
  // non-literal site, stale registry entry.
  EXPECT_TRUE(anyMessageContains(R, "fault-site", "not registered"))
      << dump(R);
  EXPECT_TRUE(anyMessageContains(R, "fault-site", "registered as 'point'"))
      << dump(R);
  EXPECT_TRUE(
      anyMessageContains(R, "fault-site", "exactly one code location"))
      << dump(R);
  EXPECT_TRUE(anyMessageContains(R, "fault-site", "string literal"))
      << dump(R);
  EXPECT_TRUE(anyMessageContains(R, "fault-site", "never used")) << dump(R);
  // The stale-registry violation anchors on the registry file itself.
  EXPECT_TRUE(std::any_of(R.Violations.begin(), R.Violations.end(),
                          [](const Violation &V) {
                            return V.File == "src/fault/FaultSites.def";
                          }))
      << dump(R);
}

// --- the real tree --------------------------------------------------------

// The same gate ctest runs as lint_tree: the library sources themselves
// must satisfy every contract (modulo the audited allowlist).
TEST(LintTree, RepositoryIsClean) {
  LintOptions Opts;
  Opts.Root = HCVLIW_SOURCE_ROOT;
  LintResult R = runLint(Opts);
  EXPECT_TRUE(R.clean()) << dump(R);
  // Stale allowlist entries are warnings, but the committed allowlist
  // must never contain one.
  EXPECT_TRUE(R.StaleAllow.empty())
      << (R.StaleAllow.empty() ? "" : R.StaleAllow[0]);
}

} // namespace
