#pragma once
#include <cstddef>

// A complete cache key: operator== and the companion hash functor both
// cover every field.
struct LoopKey {
  int LoopId = 0;
  unsigned ConfigBits = 0;
  bool operator==(const LoopKey &O) const {
    return LoopId == O.LoopId && ConfigBits == O.ConfigBits;
  }
};

struct LoopKeyHash {
  std::size_t operator()(const LoopKey &K) const {
    return static_cast<std::size_t>(K.LoopId) * 31u + K.ConfigBits;
  }
};
