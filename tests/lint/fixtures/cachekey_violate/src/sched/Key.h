#pragma once
#include <cstddef>

// Seed was added later and nobody updated == (misses Seed) or the hash
// (misses ConfigBits) — the exact drift the cache-key rule exists for.
struct StaleKey {
  int LoopId = 0;
  unsigned ConfigBits = 0;
  unsigned Seed = 0;
  bool operator==(const StaleKey &O) const {
    return LoopId == O.LoopId && ConfigBits == O.ConfigBits;
  }
};

struct StaleKeyHash {
  std::size_t operator()(const StaleKey &K) const {
    return static_cast<std::size_t>(K.LoopId) * 131u + K.Seed;
  }
};
