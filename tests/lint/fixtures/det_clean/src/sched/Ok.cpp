// The sanctioned shapes: explicitly seeded engines, value-keyed ordered
// containers, and unordered iteration that only READS.
#include <map>
#include <random>
#include <unordered_map>

unsigned draw(unsigned Seed) {
  std::mt19937 Rng(Seed); // explicit seed: deterministic by construction
  return static_cast<unsigned>(Rng());
}

int lookupOrZero(const std::unordered_map<int, int> &M, int K) {
  auto It = M.find(K);
  return It == M.end() ? 0 : It->second;
}

bool anyNegative(const std::unordered_map<int, int> &M) {
  for (const auto &KV : M)
    if (KV.second < 0)
      return true;
  return false;
}

std::map<int, int> ByStableId; // value key: iteration order is well defined
