// Every determinism rule family fires on this file.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_map>

struct Node;

struct Tally {
  int Total = 0;
  std::unordered_map<int, int> Counts;

  long nowTicks() {
    auto T = std::chrono::steady_clock::now(); // det-clock
    (void)T;
    return rand(); // det-rand (ambient libc RNG)
  }

  unsigned seed() {
    std::random_device RD; // det-rand (ambient entropy)
    return RD();
  }

  void fold() {
    for (const auto &KV : Counts)
      Total += KV.second; // det-unordered-iter: order-dependent fold
  }
};

std::map<const Node *, int> ByAddress; // det-ptr-key: address order
