// Clean shape: every site literal registered with the matching kind,
// each used at exactly one location, no registered site unused.
struct FaultInjector;

void schedule(FaultInjector *Inj, const char *Ctx) {
  HCVLIW_FAULT_POINT(Inj, "good.point", Ctx);
  if (HCVLIW_FAULT_DEGRADE(Inj, "good.degrade", Ctx))
    return;
}
