// Violating shapes, one per line: an unregistered literal, a kind
// mismatch (point site used as degrade), a duplicated literal, a
// non-literal site; plus "stale.site" registered above but never used.
struct FaultInjector;

void bad(FaultInjector *Inj, const char *Ctx, const char *SiteVar) {
  HCVLIW_FAULT_POINT(Inj, "unregistered.site", Ctx);
  if (HCVLIW_FAULT_DEGRADE(Inj, "a.point", Ctx))
    return;
  HCVLIW_FAULT_POINT(Inj, "a.point", Ctx);
  HCVLIW_FAULT_POINT(Inj, SiteVar, Ctx);
}
