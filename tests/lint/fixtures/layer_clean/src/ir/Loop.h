#pragma once
#include "support/Util.h"
struct Loop {
  int Id = 0;
};
