#include "ir/Loop.h"
#include "support/Util.h"
int schedule(const Loop &L) { return add(L.Id, 1); }
