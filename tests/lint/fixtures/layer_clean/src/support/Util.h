#pragma once
inline int add(int A, int B) { return A + B; }
