#pragma once
struct Loop {
  int Id = 0;
};
