#pragma once
#include "ir/Loop.h"
inline int loopId(const Loop &L) { return L.Id; }
