// Library code may WRITE observations freely; it just never reads them
// back. Spans, counters, and null-tracer guards are all fine.
namespace obs {
struct Tracer;
void counterAdd(Tracer *T, const char *Name, long Delta);
} // namespace obs

void recordStep(obs::Tracer *Trace) {
  if (Trace) // guarding on the tracer POINTER is fine: no value read
    obs::counterAdd(Trace, "steps", 1);
}
