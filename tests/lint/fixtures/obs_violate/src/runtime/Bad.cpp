// Both halves of the feedback loop the contract forbids.
namespace obs {
struct MetricsRegistry;
bool enabled();
} // namespace obs

template <class Registry> long readBack(const Registry &Reg) {
  if (obs::enabled()) // obs-branch: a decision fed by observation state
    return 0;
  return Reg.snapshot(); // obs-export: library code reading the read-out
}
