#pragma once
inline int id(int X) { return X; }
