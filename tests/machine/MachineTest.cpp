//===- tests/machine/MachineTest.cpp - Machine model tests ------------------===//

#include "ir/LoopDSL.h"
#include "machine/MachineDescription.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

TEST(IsaTable, PaperTable1Defaults) {
  IsaTable T;
  EXPECT_EQ(T.latency(Opcode::Load), 2u);
  EXPECT_EQ(T.latency(Opcode::Store), 2u);
  EXPECT_EQ(T.latency(Opcode::IntAdd), 1u);
  EXPECT_EQ(T.latency(Opcode::FAdd), 3u);
  EXPECT_EQ(T.latency(Opcode::IntMul), 2u);
  EXPECT_EQ(T.latency(Opcode::FMul), 6u);
  EXPECT_EQ(T.latency(Opcode::IntDiv), 6u);
  EXPECT_EQ(T.latency(Opcode::FDiv), 18u);
  EXPECT_EQ(T.latency(Opcode::FSqrt), 18u);

  EXPECT_DOUBLE_EQ(T.energy(Opcode::IntAdd), 1.0);
  EXPECT_DOUBLE_EQ(T.energy(Opcode::FAdd), 1.2);
  EXPECT_DOUBLE_EQ(T.energy(Opcode::IntMul), 1.1);
  EXPECT_DOUBLE_EQ(T.energy(Opcode::FMul), 1.5);
  EXPECT_DOUBLE_EQ(T.energy(Opcode::IntDiv), 1.4);
  EXPECT_DOUBLE_EQ(T.energy(Opcode::FDiv), 2.0);
  EXPECT_DOUBLE_EQ(T.energy(Opcode::Load), 1.0);
}

TEST(IsaTable, CopyIsFreePerInstruction) {
  // Copies are charged through the communication term, not E_ins.
  IsaTable T;
  EXPECT_DOUBLE_EQ(T.energy(Opcode::Copy), 0.0);
  EXPECT_EQ(T.latency(Opcode::Copy), 1u);
}

TEST(IsaTable, SetOverrides) {
  IsaTable T;
  T.set(OpCategory::Arith, /*IsFloat=*/true, {4, 1.3});
  EXPECT_EQ(T.latency(Opcode::FAdd), 4u);
  EXPECT_DOUBLE_EQ(T.energy(Opcode::FSub), 1.3);
  // INT arithmetic unaffected.
  EXPECT_EQ(T.latency(Opcode::IntAdd), 1u);
}

TEST(Machine, PaperDefaultShape) {
  MachineDescription M = MachineDescription::paperDefault();
  EXPECT_EQ(M.numClusters(), 4u);
  EXPECT_EQ(M.Buses, 1u);
  for (const auto &C : M.Clusters) {
    EXPECT_EQ(C.IntFUs, 1u);
    EXPECT_EQ(C.FpFUs, 1u);
    EXPECT_EQ(C.MemPorts, 1u);
    EXPECT_EQ(C.Registers, 16u);
  }
  EXPECT_EQ(M.totalFUs(FUKind::IntFU), 4u);
  EXPECT_EQ(M.totalFUs(FUKind::FpFU), 4u);
  EXPECT_EQ(M.totalFUs(FUKind::MemPort), 4u);
  EXPECT_EQ(M.totalFUs(FUKind::Bus), 1u);
  EXPECT_EQ(M.refFrequency(), Rational(1));
}

TEST(Machine, TwoBusVariant) {
  MachineDescription M = MachineDescription::paperDefault(2);
  EXPECT_EQ(M.Buses, 2u);
  EXPECT_EQ(M.totalFUs(FUKind::Bus), 2u);
}

TEST(Machine, ResMIIByKind) {
  MachineDescription M = MachineDescription::paperDefault();
  Loop L = parseSingleLoop(R"(
loop t trip=4
  arrays A O
  a = load A
  b = load A off=1
  c = load A off=2
  d = load A off=3
  e = load A off=4
  f = fadd a b
  store O f
endloop
)");
  // 6 memory ops over 4 ports -> ceil(6/4) = 2; 1 FP op -> 1.
  EXPECT_EQ(M.computeResMII(L), 2);
}

TEST(Machine, ResMIIAtLeastOne) {
  MachineDescription M = MachineDescription::paperDefault();
  Loop L = parseSingleLoop(R"(
loop t trip=4
  arrays O
  a = fadd #1 #2
  store O a
endloop
)");
  EXPECT_EQ(M.computeResMII(L), 1);
}

TEST(Machine, SingleClusterResMII) {
  MachineDescription M = MachineDescription::paperDefault(1, 1);
  EXPECT_EQ(M.Clusters[0].Registers, 64u);
  Loop L = parseSingleLoop(R"(
loop t trip=4
  arrays A O
  a = load A
  b = load A off=1
  f = fadd a b
  g = fmul f f
  store O g
endloop
)");
  // 3 memory ops on 1 port -> 3.
  EXPECT_EQ(M.computeResMII(L), 3);
}

} // namespace
