//===- tests/mcd/McdTest.cpp - Multi-clock-domain model tests ---------------===//

#include "mcd/DomainPlanner.h"
#include "mcd/SyncModel.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

TEST(FrequencyMenu, ContinuousPicksFloor) {
  FrequencyMenu M = FrequencyMenu::continuous();
  // fmax = 1 GHz, IT = 3.5 ns -> II = 3, f = 6/7 GHz.
  auto Sel = M.selectIIFreq(Rational(7, 2), Rational(1));
  ASSERT_TRUE(Sel.has_value());
  EXPECT_EQ(Sel->first, 3);
  EXPECT_EQ(Sel->second, Rational(6, 7));
}

TEST(FrequencyMenu, ContinuousFailsBelowOneSlot) {
  FrequencyMenu M = FrequencyMenu::continuous();
  EXPECT_FALSE(M.selectIIFreq(Rational(1, 2), Rational(1)).has_value());
}

TEST(FrequencyMenu, PaperFigure3Example) {
  // Clusters at 1 ns and 1.5 ns, IT = 3 ns: II = 3 and II = 2.
  FrequencyMenu M = FrequencyMenu::continuous();
  auto C1 = M.selectIIFreq(Rational(3), Rational(1));
  auto C2 = M.selectIIFreq(Rational(3), Rational(2, 3));
  ASSERT_TRUE(C1 && C2);
  EXPECT_EQ(C1->first, 3);
  EXPECT_EQ(C2->first, 2);
}

TEST(FrequencyMenu, UniformRequiresExactIntegrality) {
  // 4 frequencies {0.25, 0.5, 0.75, 1.0} GHz.
  FrequencyMenu M = FrequencyMenu::uniform(4, Rational(1));
  // IT = 4 ns: best is 1 GHz, II = 4.
  auto A = M.selectIIFreq(Rational(4), Rational(1));
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->first, 4);
  EXPECT_EQ(A->second, Rational(1));
  // IT = 4 ns with fmax 0.9: 0.75 GHz gives 3 slots.
  auto B = M.selectIIFreq(Rational(4), Rational(9, 10));
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->first, 3);
  EXPECT_EQ(B->second, Rational(3, 4));
  // IT = 10/3 ns: 0.75 GHz gives 2.5 slots (not integral), 0.5 never
  // integral either (5/3); 0.25: 5/6 -> no pair at all.
  EXPECT_FALSE(M.selectIIFreq(Rational(10, 3), Rational(1)).has_value());
}

TEST(FrequencyMenu, NextITStrictlyIncreasesAndIsFeasible) {
  for (const FrequencyMenu &M :
       {FrequencyMenu::continuous(), FrequencyMenu::uniform(8, Rational(1)),
        FrequencyMenu::relativeLadder(8)}) {
    Rational IT(3, 2);
    Rational Fmax(4, 5);
    for (int I = 0; I < 20; ++I) {
      Rational Next = M.nextIT(IT, Fmax);
      EXPECT_GT(Next, IT);
      EXPECT_TRUE(M.selectIIFreq(Next, Fmax).has_value());
      IT = Next;
    }
  }
}

TEST(FrequencyMenu, RelativeLadderKeepsFmax) {
  FrequencyMenu M = FrequencyMenu::relativeLadder(4);
  // Ratios: 1, 1/2, 2/3, 3/4. At a synchronizable IT, fmax itself wins.
  auto Sel = M.selectIIFreq(Rational(5), Rational(4, 5));
  ASSERT_TRUE(Sel.has_value());
  EXPECT_EQ(Sel->first, 4);
  EXPECT_EQ(Sel->second, Rational(4, 5));
}

TEST(FrequencyMenu, RelativeLadderRatios) {
  FrequencyMenu M = FrequencyMenu::relativeLadder(6);
  const auto &R = M.ratios();
  ASSERT_EQ(R.size(), 6u);
  EXPECT_EQ(R.front(), Rational(1));
  for (size_t I = 1; I < R.size(); ++I)
    EXPECT_LT(R[I], R[I - 1]); // sorted descending, distinct
  EXPECT_GE(R.back(), Rational(1, 2));
}

TEST(SyncModel, AlignUp) {
  EXPECT_EQ(alignUpToTick(Rational(5, 2), Rational(1)), Rational(3));
  EXPECT_EQ(alignUpToTick(Rational(3), Rational(1)), Rational(3));
  EXPECT_EQ(alignUpToTick(Rational(0), Rational(3, 2)), Rational(0));
}

TEST(SyncModel, SameFrequencyNoPenalty) {
  EXPECT_EQ(crossDomainArrival(Rational(7, 2), Rational(1), Rational(1)),
            Rational(7, 2));
}

TEST(SyncModel, CrossFrequencyAlignsPlusOneCycle) {
  // Ready at 2.5 ns, consumer period 1.5 ns: align to 3.0, +1.5 queue.
  EXPECT_EQ(crossDomainArrival(Rational(5, 2), Rational(1), Rational(3, 2)),
            Rational(9, 2));
  // Exactly on a tick still pays the queue cycle.
  EXPECT_EQ(crossDomainArrival(Rational(3), Rational(1), Rational(3, 2)),
            Rational(9, 2));
}

class PlannerTest : public ::testing::Test {
protected:
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);

  void makeHeterogeneous() {
    C.Clusters[0].PeriodNs = Rational(9, 10);
    for (unsigned I = 1; I < 4; ++I)
      C.Clusters[I].PeriodNs = Rational(27, 20); // 1.35 ns
    C.Icn.PeriodNs = Rational(9, 10);
    C.Cache.PeriodNs = Rational(9, 10);
  }
};

TEST_F(PlannerTest, HomogeneousPlanIIsEqual) {
  DomainPlanner P(M, C, FrequencyMenu::continuous());
  auto Plan = P.planForIT(Rational(5));
  ASSERT_TRUE(Plan.has_value());
  for (const auto &D : Plan->Clusters) {
    EXPECT_EQ(D.II, 5);
    EXPECT_EQ(D.PeriodNs, Rational(1));
  }
  EXPECT_EQ(Plan->Bus.II, 5);
  EXPECT_EQ(Plan->Cache.II, 5);
}

TEST_F(PlannerTest, HeterogeneousIIsFollowPeriods) {
  makeHeterogeneous();
  DomainPlanner P(M, C, FrequencyMenu::continuous());
  // IT = 5.4 ns: fast 0.9 ns -> II 6; slow 1.35 ns -> II 4.
  auto Plan = P.planForIT(Rational(27, 5));
  ASSERT_TRUE(Plan.has_value());
  EXPECT_EQ(Plan->Clusters[0].II, 6);
  EXPECT_EQ(Plan->Clusters[1].II, 4);
  // II * running period == IT in every domain.
  for (const auto &D : Plan->Clusters)
    EXPECT_EQ(Rational(D.II) * D.PeriodNs, Rational(27, 5));
}

TEST_F(PlannerTest, ConfigFastest) {
  makeHeterogeneous();
  EXPECT_EQ(C.fastestClusterPeriod(), Rational(9, 10));
  EXPECT_EQ(C.fastestCluster(), 0u);
  EXPECT_FALSE(C.hasUniformClusterFrequency());
  EXPECT_TRUE(HeteroConfig::reference(M).hasUniformClusterFrequency());
}

TEST_F(PlannerTest, MITIsRecurrenceBound) {
  makeHeterogeneous();
  DomainPlanner P(M, C, FrequencyMenu::continuous());
  // recMII 10 with a tiny body: recMIT = 10 * 0.9 = 9 ns dominates.
  std::vector<unsigned> Counts(NumFUKinds, 0);
  Counts[static_cast<unsigned>(FUKind::FpFU)] = 2;
  EXPECT_EQ(P.computeMIT(10, Counts), Rational(9));
}

TEST_F(PlannerTest, MITIsResourceBound) {
  makeHeterogeneous();
  DomainPlanner P(M, C, FrequencyMenu::continuous());
  // 20 FP ops, no recurrence: capacity needs
  // II_fast + 3*II_slow >= 20.
  std::vector<unsigned> Counts(NumFUKinds, 0);
  Counts[static_cast<unsigned>(FUKind::FpFU)] = 20;
  Rational MIT = P.computeMIT(0, Counts);
  auto Plan = P.planForIT(MIT);
  ASSERT_TRUE(Plan.has_value());
  EXPECT_TRUE(P.hasCapacity(*Plan, Counts));
  // And the step before would not have had capacity (minimality): MIT
  // must be at least 20/ (1/0.9 + 3/1.35) ns.
  EXPECT_GE(MIT, Rational(20) / (Rational(10, 9) + Rational(3) *
                                                       Rational(20, 27)));
}

TEST_F(PlannerTest, PaperFigure4ResMITExample) {
  // Two clusters, 1 ns and 5/3 ns, one "slot" per cycle each, five
  // unit ops -> IT = 10/3 ns (3 slots + 2 slots), as in Figure 4.
  MachineDescription M2 = MachineDescription::paperDefault(1, 2);
  // One FU of each kind per cluster; use INT ops only.
  HeteroConfig C2 = HeteroConfig::reference(M2);
  C2.Clusters[0].PeriodNs = Rational(1);
  C2.Clusters[1].PeriodNs = Rational(5, 3);
  DomainPlanner P(M2, C2, FrequencyMenu::continuous());
  std::vector<unsigned> Counts(NumFUKinds, 0);
  Counts[static_cast<unsigned>(FUKind::IntFU)] = 5;
  // recMIT from the paper's example: 3 cycles * 1 ns = 3 ns; resMIT
  // pushes it to 10/3.
  EXPECT_EQ(P.computeMIT(3, Counts), Rational(10, 3));
}

TEST_F(PlannerTest, NextITMonotone) {
  makeHeterogeneous();
  for (const FrequencyMenu &Menu :
       {FrequencyMenu::continuous(), FrequencyMenu::relativeLadder(8)}) {
    DomainPlanner P(M, C, Menu);
    Rational IT(2);
    for (int I = 0; I < 30; ++I) {
      Rational Next = P.nextIT(IT);
      EXPECT_GT(Next, IT);
      IT = Next;
    }
  }
}

} // namespace
