//===- tests/mcd/PlanGridTest.cpp - Tick-grid lowering of machine plans ----===//

#include "mcd/PlanGrid.h"
#include "mcd/SyncModel.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

MachinePlan planWith(Rational IT, std::vector<Rational> ClusterPeriods,
                     Rational BusPeriod) {
  MachinePlan P;
  P.ITNs = IT;
  for (const Rational &C : ClusterPeriods) {
    DomainPlan D;
    D.PeriodNs = C;
    D.FreqGHz = C.reciprocal();
    D.II = (IT / C).floor();
    P.Clusters.push_back(D);
  }
  P.Bus.PeriodNs = BusPeriod;
  P.Bus.FreqGHz = BusPeriod.reciprocal();
  P.Bus.II = (IT / BusPeriod).floor();
  P.Cache = P.Bus;
  return P;
}

TEST(PlanGrid, LowersOntoDenominatorLcm) {
  // IT 27/2, periods 9/10 and 27/20, bus 9/10: LCM(2, 10, 20, 10) = 20.
  MachinePlan P = planWith(Rational(27, 2),
                           {Rational(9, 10), Rational(27, 20)},
                           Rational(9, 10));
  PlanGrid G = PlanGrid::compute(P);
  ASSERT_TRUE(G.valid());
  EXPECT_EQ(G.ticksPerNs(), 20);
  EXPECT_EQ(G.itTicks(), 270);
  EXPECT_EQ(G.clusterPeriodTicks(0), 18);
  EXPECT_EQ(G.clusterPeriodTicks(1), 27);
  EXPECT_EQ(G.busPeriodTicks(), 18);
  // toTicks/toNs round-trip any on-grid value exactly.
  EXPECT_EQ(G.toTicks(Rational(27, 20)), 27);
  EXPECT_EQ(G.toNs(27), Rational(27, 20));
  EXPECT_EQ(G.toNs(G.toTicks(P.ITNs)), P.ITNs);
}

TEST(PlanGrid, IntegerPlanHasUnitGrid) {
  MachinePlan P = planWith(Rational(8), {Rational(1), Rational(2)},
                           Rational(1));
  PlanGrid G = PlanGrid::compute(P);
  ASSERT_TRUE(G.valid());
  EXPECT_EQ(G.ticksPerNs(), 1);
  EXPECT_EQ(G.itTicks(), 8);
  EXPECT_EQ(G.periodTicks(1, /*BusDomain=*/2), 2);
  EXPECT_EQ(G.periodTicks(2, /*BusDomain=*/2), 1);
}

TEST(PlanGrid, LcmOverflowYieldsInvalidGrid) {
  // Coprime ~4e9 denominators: the LCM alone exceeds int64, so the
  // lowering must report "no grid" instead of asserting.
  MachinePlan P = planWith(Rational(8),
                           {Rational(1, 4000000007LL),
                            Rational(1, 4000000009LL)},
                           Rational(1));
  EXPECT_FALSE(PlanGrid::compute(P).valid());
  EXPECT_EQ(lcm64Checked(4000000007LL, 4000000009LL), 0);
}

TEST(PlanGrid, HeadroomBoundYieldsInvalidGrid) {
  // The LCM fits int64 but exceeds the MaxTicks product-headroom bound
  // (slots x periods must stay well inside int64): also "no grid".
  MachinePlan P = planWith(Rational(8),
                           {Rational(1, 1000003), Rational(1, 1000033)},
                           Rational(1));
  ASSERT_GT(static_cast<__int128>(1000003) * 1000033, PlanGrid::MaxTicks);
  EXPECT_FALSE(PlanGrid::compute(P).valid());
}

TEST(PlanGrid, TickTimingRulesMatchRational) {
  // The integer sync rules agree with the Rational ones on the grid.
  Rational P(27, 20), T(101, 4);
  MachinePlan Plan = planWith(Rational(27, 2), {P}, Rational(9, 10));
  PlanGrid G = PlanGrid::compute(Plan);
  ASSERT_TRUE(G.valid());
  int64_t PT = G.clusterPeriodTicks(0);
  int64_t TT = G.toTicks(T);
  EXPECT_EQ(G.toNs(alignUpToTick(TT, PT)), alignUpToTick(T, P));
  EXPECT_EQ(G.toNs(crossDomainArrival(TT, G.busPeriodTicks(), PT)),
            crossDomainArrival(T, Rational(9, 10), P));
  EXPECT_EQ(crossDomainArrival(TT, PT, PT), TT);
  // floor/ceil division match Rational floor/ceil for either sign.
  for (int64_t A : {-55LL, -27LL, -1LL, 0LL, 1LL, 26LL, 55LL}) {
    EXPECT_EQ(floorDivTick(A, PT), Rational(A, PT).floor()) << A;
    EXPECT_EQ(ceilDivTick(A, PT), Rational(A, PT).ceil()) << A;
  }
}

} // namespace
