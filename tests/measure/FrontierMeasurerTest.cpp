//===- tests/measure/FrontierMeasurerTest.cpp - Measured frontier -----------===//
//
// The FrontierMeasurer contracts: the measured frontier is
// bit-identical for Threads in {1, 2, 4} (the acceptance gate); the
// re-ranking by measured ED2 and the two argmins are internally
// consistent; the SuiteRunner's --measure-frontier mode fills one
// measured frontier per successful program; and the CSV/JSON
// serialization carries every point.
//
//===----------------------------------------------------------------------===//

#include "runtime/FrontierMeasurer.h"
#include "runtime/SuiteRunner.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace hcvliw;

namespace {

/// Field-for-field equality of two measured frontiers. EXPECT_EQ on
/// doubles is bitwise-exact equality — that is the contract. The
/// ScheduleHits/Misses diagnostics are scheduling-dependent (concurrent
/// points may duplicate a compute instead of hitting) and are excluded.
void expectBitIdentical(const MeasuredFrontier &A, const MeasuredFrontier &B) {
  EXPECT_EQ(A.Program, B.Program);
  ASSERT_EQ(A.Points.size(), B.Points.size());
  for (size_t I = 0; I < A.Points.size(); ++I) {
    const FrontierPointMeasurement &X = A.Points[I], &Y = B.Points[I];
    EXPECT_EQ(X.Candidate, Y.Candidate);
    EXPECT_EQ(X.FastFactor.str(), Y.FastFactor.str());
    EXPECT_EQ(X.SlowRatio.str(), Y.SlowRatio.str());
    EXPECT_EQ(X.Design.EstTexecNs, Y.Design.EstTexecNs);
    EXPECT_EQ(X.Design.EstEnergy, Y.Design.EstEnergy);
    EXPECT_EQ(X.Design.EstED2, Y.Design.EstED2);
    EXPECT_EQ(X.Measured.Ok, Y.Measured.Ok);
    EXPECT_EQ(X.Measured.TexecNs, Y.Measured.TexecNs);
    EXPECT_EQ(X.Measured.Energy, Y.Measured.Energy);
    EXPECT_EQ(X.Measured.ED2, Y.Measured.ED2);
    EXPECT_EQ(X.Measured.Failures, Y.Measured.Failures);
    EXPECT_EQ(X.TexecError, Y.TexecError);
    EXPECT_EQ(X.EnergyError, Y.EnergyError);
    EXPECT_EQ(X.ED2Error, Y.ED2Error);
  }
  EXPECT_EQ(A.RankByMeasuredED2, B.RankByMeasuredED2);
  EXPECT_EQ(A.EstArgmin, B.EstArgmin);
  EXPECT_EQ(A.MeasArgmin, B.MeasArgmin);
  EXPECT_EQ(A.ArgminAgrees, B.ArgminAgrees);
}

MeasuredFrontier measureWithThreads(const char *Program, unsigned Threads) {
  Session S{PipelineOptions(), Threads};
  PipelineError Err;
  auto F = FrontierMeasurer(S).measureProgram(buildSpecFPProgram(Program),
                                              &Err);
  EXPECT_TRUE(F.has_value()) << Err.Reason;
  return *F;
}

// --- Determinism (the acceptance gate) -------------------------------------

TEST(FrontierMeasurer, BitIdenticalAcrossThreadCounts) {
  for (const char *Program : {"200.sixtrack", "171.swim"}) {
    MeasuredFrontier Serial = measureWithThreads(Program, 1);
    ASSERT_FALSE(Serial.Points.empty()) << Program;
    for (unsigned Threads : {2u, 4u})
      expectBitIdentical(Serial, measureWithThreads(Program, Threads));
  }
}

// --- Re-ranking and argmin contracts ---------------------------------------

TEST(FrontierMeasurer, RankAndArgminAreConsistent) {
  MeasuredFrontier F = measureWithThreads("200.sixtrack", 2);
  ASSERT_FALSE(F.Points.empty());

  // On the paper grid every frontier point is schedulable.
  for (const FrontierPointMeasurement &P : F.Points) {
    EXPECT_TRUE(P.Measured.Ok);
    EXPECT_GT(P.Measured.TexecNs, 0.0);
    EXPECT_GT(P.Measured.Energy, 0.0);
    EXPECT_EQ(P.ED2Error, P.Measured.ED2 / P.Design.EstED2 - 1.0);
  }
  ASSERT_EQ(F.RankByMeasuredED2.size(), F.Points.size());

  // The rank is ascending in measured ED2, ties by point index.
  for (size_t I = 1; I < F.RankByMeasuredED2.size(); ++I) {
    double Prev = F.Points[F.RankByMeasuredED2[I - 1]].Measured.ED2;
    double Cur = F.Points[F.RankByMeasuredED2[I]].Measured.ED2;
    EXPECT_LE(Prev, Cur);
    if (Prev == Cur) {
      EXPECT_LT(F.RankByMeasuredED2[I - 1], F.RankByMeasuredED2[I]);
    }
  }

  // The argmins really minimize their metric over the points.
  for (const FrontierPointMeasurement &P : F.Points) {
    EXPECT_LE(F.Points[F.EstArgmin].Design.EstED2, P.Design.EstED2);
    EXPECT_LE(F.Points[F.MeasArgmin].Measured.ED2, P.Measured.ED2);
  }
  EXPECT_EQ(F.MeasArgmin, F.RankByMeasuredED2.front());
  EXPECT_EQ(F.ArgminAgrees, F.EstArgmin == F.MeasArgmin);

  // The estimated argmin is the design runProgram selects: its
  // estimate must match the pipeline's selection.
  Session S{PipelineOptions(), 1};
  auto R = S.pipeline().runProgram(buildSpecFPProgram("200.sixtrack"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(F.Points[F.EstArgmin].Design.EstED2, R->HetDesign.EstED2);
  EXPECT_EQ(F.Points[F.EstArgmin].Measured.ED2, R->HetMeasured.ED2);
}

TEST(FrontierMeasurer, EstimateErrorsStayInTheModelBand) {
  // The Section 3 models should predict every frontier point's
  // measured ED2 within a factor of 2 (the pipeline pins the same band
  // for the selected design; the frontier generalizes it).
  for (const char *Program : {"200.sixtrack", "187.facerec", "171.swim"}) {
    MeasuredFrontier F = measureWithThreads(Program, 2);
    for (const FrontierPointMeasurement &P : F.Points) {
      EXPECT_GT(P.Measured.ED2 / P.Design.EstED2, 0.5) << Program;
      EXPECT_LT(P.Measured.ED2 / P.Design.EstED2, 2.0) << Program;
    }
  }
}

// --- SuiteRunner integration -----------------------------------------------

TEST(SuiteRunner, MeasureFrontierFillsOneFrontierPerProgram) {
  std::vector<BenchmarkProgram> Programs = {
      buildSpecFPProgram("171.swim"), buildSpecFPProgram("200.sixtrack")};
  Session S{PipelineOptions(), 2};
  SuiteOptions SO;
  SO.MeasureFrontier = true;
  SuiteResult R = SuiteRunner(S).run(Programs, SO);
  ASSERT_EQ(R.Names.size(), 2u);
  ASSERT_EQ(R.Frontiers.size(), 2u);
  for (size_t I = 0; I < R.Names.size(); ++I) {
    EXPECT_EQ(R.Frontiers[I].Program, R.Names[I]);
    EXPECT_FALSE(R.Frontiers[I].Points.empty());
  }

  // Without the flag the vector stays empty.
  SuiteResult Plain = SuiteRunner(S).run(Programs);
  EXPECT_TRUE(Plain.Frontiers.empty());
}

TEST(SuiteRunner, MeasuredFrontiersBitIdenticalAcrossThreadCounts) {
  std::vector<BenchmarkProgram> Programs = {
      buildSpecFPProgram("187.facerec"), buildSpecFPProgram("172.mgrid")};
  SuiteOptions SO;
  SO.MeasureFrontier = true;

  Session S1{PipelineOptions(), 1};
  SuiteResult Serial = SuiteRunner(S1).run(Programs, SO);
  ASSERT_EQ(Serial.Frontiers.size(), 2u);
  for (unsigned Threads : {2u, 4u}) {
    Session S{PipelineOptions(), Threads};
    SuiteResult Par = SuiteRunner(S).run(Programs, SO);
    ASSERT_EQ(Par.Frontiers.size(), Serial.Frontiers.size());
    for (size_t I = 0; I < Serial.Frontiers.size(); ++I)
      expectBitIdentical(Serial.Frontiers[I], Par.Frontiers[I]);
  }
}

// --- Serialization ---------------------------------------------------------

TEST(MeasuredFrontier, UnmeasurablePointsSerializeWithoutAnArgmin) {
  // When no point is measurable the re-ranking is empty and no point
  // may be flagged (or serialized) as the measured argmin.
  MeasuredFrontier F;
  F.Program = "000.unmeasurable";
  F.Points.emplace_back(); // Measured.Ok defaults to false
  std::string Csv = F.csv();
  EXPECT_NE(Csv.find(",-1,1,0\n"), std::string::npos)
      << "rank -1, est_argmin 1, meas_argmin 0 expected:\n"
      << Csv;
  EXPECT_NE(F.json().find("\"meas_argmin\": null"), std::string::npos);
}

TEST(MeasuredFrontier, CsvCarriesEveryPoint) {
  MeasuredFrontier F = measureWithThreads("171.swim", 1);
  std::string Csv = F.csv();
  size_t Lines = std::count(Csv.begin(), Csv.end(), '\n');
  EXPECT_EQ(Lines, F.Points.size() + 1); // header + one row per point
  EXPECT_EQ(Csv.compare(0, 8, "program,"), 0);
  EXPECT_NE(Csv.find("171.swim"), std::string::npos);

  std::string Json = F.json();
  EXPECT_NE(Json.find("\"argmin_agrees\""), std::string::npos);
  EXPECT_NE(Json.find("\"rank_by_measured_ed2\""), std::string::npos);

  // The aggregate writer stacks rows under one header.
  std::string Path = testing::TempDir() + "frontier_measured_test.csv";
  ASSERT_TRUE(writeFrontierCsv({F, F}, Path));
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(In, nullptr);
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
    Data.append(Buf, N);
  std::fclose(In);
  std::remove(Path.c_str());
  EXPECT_EQ(static_cast<size_t>(
                std::count(Data.begin(), Data.end(), '\n')),
            2 * F.Points.size() + 1);
}

} // namespace
