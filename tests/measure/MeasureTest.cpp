//===- tests/measure/MeasureTest.cpp - ScheduleMeasurer / ScheduleCache -----===//
//
// The extracted measurement stage: HeterogeneousPipeline step 4 through
// ScheduleMeasurer is bit-identical to measuring directly; the
// session ScheduleCache serves bit-identical schedules (across repeated
// measurements, across the step-4/frontier consumers and across
// structurally identical programs); and a loop failing to schedule
// mid-suite surfaces as a structured Measurement-stage failure instead
// of being dropped.
//
//===----------------------------------------------------------------------===//

#include "ir/LoopBuilder.h"
#include "runtime/FrontierMeasurer.h"
#include "runtime/SuiteRunner.h"
#include "support/StrUtil.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

#include <mutex>

using namespace hcvliw;

namespace {

/// Field-for-field equality of two measurements. EXPECT_EQ on doubles
/// is bitwise-exact equality — that is the contract. The ScheduleCache
/// hit/miss counters are diagnostics, not results, and are excluded.
void expectBitIdentical(const ConfigRunResult &A, const ConfigRunResult &B) {
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.TexecNs, B.TexecNs);
  EXPECT_EQ(A.Energy, B.Energy);
  EXPECT_EQ(A.ED2, B.ED2);
  EXPECT_EQ(A.Failures, B.Failures);
  ASSERT_EQ(A.Loops.size(), B.Loops.size());
  for (size_t I = 0; I < A.Loops.size(); ++I) {
    EXPECT_EQ(A.Loops[I].Name, B.Loops[I].Name);
    EXPECT_EQ(A.Loops[I].ITNs, B.Loops[I].ITNs);
    EXPECT_EQ(A.Loops[I].TexecNs, B.Loops[I].TexecNs);
    EXPECT_EQ(A.Loops[I].Comms, B.Loops[I].Comms);
  }
}

/// A single-loop program that profiles fine under the default IT
/// budget but cannot be scheduled when the budget is zero: twelve
/// "diamonds", each a value pinned early (its store lands right after
/// it and stores never move) and re-read at the end of a 4-deep FDiv
/// chain. Both demands shrink with IT growth but are immovable at the
/// minimal IT: the pinned lifetimes span a fixed ~72 cycles regardless
/// of placement (stage-compaction salvage cannot shorten them), and 48
/// FDivs saturate the scarce divide bandwidth. Unlike a wide stream
/// loop — whose step-0 overflow compaction now rescues — this stays
/// unschedulable at IT+0.
BenchmarkProgram pressureProgram() {
  LoopBuilder B("pressure_acc", 64, 1.0);
  unsigned Out = B.array("OUT");
  Operand K = B.liveIn("k", 1.0078125);
  unsigned Slot = 0;
  for (unsigned D = 0; D < 12; ++D) {
    unsigned X = B.op(Opcode::FAdd, formatString("x.%u", D), K, K);
    B.store(Out, Operand::def(X), Slot++, /*Scale=*/4);
    unsigned Prev = X;
    for (unsigned I = 0; I < 4; ++I)
      Prev = B.op(Opcode::FDiv, formatString("d.%u.%u", D, I),
                  Operand::def(Prev), K);
    unsigned End = B.op(Opcode::FAdd, formatString("e.%u", D),
                        Operand::def(Prev), Operand::def(X));
    B.store(Out, Operand::def(End), Slot++, /*Scale=*/4);
  }
  BenchmarkProgram P;
  P.Name = "900.pressure";
  P.Loops.push_back(B.take());
  return P;
}

// --- The extracted stage ---------------------------------------------------

TEST(ScheduleMeasurer, PipelineStep4IsAThinFacade) {
  // measureConfig (the pipeline's step 4) must equal a directly
  // constructed ScheduleMeasurer run under measureOptionsFor(Opts),
  // for both the heterogeneous and the homogeneous measurement.
  PipelineOptions Opts;
  HeterogeneousPipeline Pipe(Opts);
  BenchmarkProgram Prog = buildSpecFPProgram("171.swim");
  auto R = Pipe.runProgram(Prog);
  ASSERT_TRUE(R.has_value());

  EnergyModel Energy(Opts.Breakdown, R->Profile.Totals,
                     R->Profile.TexecRefNs, Pipe.machine().numClusters());
  ScheduleMeasurer M(Pipe.machine(),
                     HeterogeneousPipeline::measureOptionsFor(Opts));
  ConfigRunResult Het =
      M.measure(R->Profile, Prog.Loops, R->HetDesign.Config,
                R->HetDesign.Scaling, Energy, /*ED2Objective=*/true);
  ConfigRunResult Hom =
      M.measure(R->Profile, Prog.Loops, R->HomDesign.Config,
                R->HomDesign.Scaling, Energy, /*ED2Objective=*/false);
  expectBitIdentical(R->HetMeasured, Het);
  expectBitIdentical(R->HomMeasured, Hom);
}

TEST(ScheduleMeasurer, SessionPipelineMatchesStandaloneMeasurement) {
  // The session pipeline measures through the session ScheduleCache;
  // the standalone one schedules directly. Results must agree exactly.
  PipelineOptions Opts;
  HeterogeneousPipeline Standalone(Opts);
  Session S(Opts, 2);
  for (const char *Name : {"171.swim", "200.sixtrack", "187.facerec"}) {
    auto A = Standalone.runProgram(buildSpecFPProgram(Name));
    auto B = S.pipeline().runProgram(buildSpecFPProgram(Name));
    ASSERT_TRUE(A.has_value() && B.has_value()) << Name;
    expectBitIdentical(A->HetMeasured, B->HetMeasured);
    expectBitIdentical(A->HomMeasured, B->HomMeasured);
  }
  EXPECT_GT(S.scheduleCache().size(), 0u);
}

// --- ScheduleCache ---------------------------------------------------------

TEST(ScheduleCache, RepeatedMeasurementHitsAndIsBitIdentical) {
  PipelineOptions Opts;
  HeterogeneousPipeline Pipe(Opts);
  BenchmarkProgram Prog = buildSpecFPProgram("200.sixtrack");
  auto R = Pipe.runProgram(Prog);
  ASSERT_TRUE(R.has_value());
  EnergyModel Energy(Opts.Breakdown, R->Profile.Totals,
                     R->Profile.TexecRefNs, Pipe.machine().numClusters());

  ScheduleCache Cache;
  ScheduleMeasurer Cached(Pipe.machine(),
                          HeterogeneousPipeline::measureOptionsFor(Opts),
                          &Cache);
  ConfigRunResult First =
      Cached.measure(R->Profile, Prog.Loops, R->HetDesign.Config,
                     R->HetDesign.Scaling, Energy, true);
  EXPECT_EQ(First.ScheduleHits, 0u);
  EXPECT_EQ(First.ScheduleMisses, Prog.Loops.size());
  EXPECT_EQ(Cache.size(), Prog.Loops.size());

  ConfigRunResult Second =
      Cached.measure(R->Profile, Prog.Loops, R->HetDesign.Config,
                     R->HetDesign.Scaling, Energy, true);
  EXPECT_EQ(Second.ScheduleHits, Prog.Loops.size());
  EXPECT_EQ(Second.ScheduleMisses, 0u);
  expectBitIdentical(First, Second);

  // And cached == computed-from-scratch.
  ScheduleMeasurer Direct(Pipe.machine(),
                          HeterogeneousPipeline::measureOptionsFor(Opts));
  expectBitIdentical(Direct.measure(R->Profile, Prog.Loops,
                                    R->HetDesign.Config,
                                    R->HetDesign.Scaling, Energy, true),
                     Second);
}

TEST(ScheduleCache, HomogeneousKeyIgnoresVoltages) {
  // The baseline objective never reads voltages: two configs equal in
  // periods but different in Vdd must share hom-baseline schedules.
  PipelineOptions Opts;
  HeterogeneousPipeline Pipe(Opts);
  BenchmarkProgram Prog = buildSpecFPProgram("171.swim");
  auto R = Pipe.runProgram(Prog);
  ASSERT_TRUE(R.has_value());
  EnergyModel Energy(Opts.Breakdown, R->Profile.Totals,
                     R->Profile.TexecRefNs, Pipe.machine().numClusters());

  ScheduleCache Cache;
  ScheduleMeasurer M(Pipe.machine(),
                     HeterogeneousPipeline::measureOptionsFor(Opts),
                     &Cache);
  ConfigRunResult A = M.measure(R->Profile, Prog.Loops,
                                R->HomDesign.Config, R->HomDesign.Scaling,
                                Energy, /*ED2Objective=*/false);
  HeteroConfig Bumped = R->HomDesign.Config;
  for (auto &C : Bumped.Clusters)
    C.Vdd += 0.05;
  ConfigRunResult B =
      M.measure(R->Profile, Prog.Loops, Bumped, R->HomDesign.Scaling,
                Energy, /*ED2Objective=*/false);
  EXPECT_EQ(B.ScheduleHits, Prog.Loops.size());
  EXPECT_EQ(B.ScheduleMisses, 0u);
  expectBitIdentical(A, B);
}

TEST(ScheduleCache, HitsAcrossStructurallyIdenticalPrograms) {
  // A renamed clone of a program selects the same designs (the
  // selection memo keys exclude the name) and then measures entirely
  // from the schedule cache.
  Session S{PipelineOptions(), 1};
  BenchmarkProgram Orig = buildSpecFPProgram("171.swim");
  auto R1 = S.pipeline().runProgram(Orig);
  ASSERT_TRUE(R1.has_value());
  uint64_t Hits1 = S.scheduleCache().hits();
  uint64_t Misses1 = S.scheduleCache().misses();

  BenchmarkProgram Clone = Orig;
  Clone.Name = "999.swim_clone";
  auto R2 = S.pipeline().runProgram(Clone);
  ASSERT_TRUE(R2.has_value());
  EXPECT_EQ(S.scheduleCache().misses(), Misses1) << "clone recomputed";
  EXPECT_EQ(S.scheduleCache().hits() - Hits1, 2 * Orig.Loops.size());
  EXPECT_EQ(R1->HetMeasured.ED2, R2->HetMeasured.ED2);
  EXPECT_EQ(R1->HomMeasured.ED2, R2->HomMeasured.ED2);
  EXPECT_EQ(R1->ED2Ratio, R2->ED2Ratio);
}

TEST(ScheduleCache, FrontierMeasurementReusesStep4Schedules) {
  // The estimated ED2 argmin is always on the frontier, so measuring
  // the frontier after runProgram must hit the schedules step 4 just
  // filled (at least that one point's loops).
  Session S{PipelineOptions(), 1};
  BenchmarkProgram Prog = buildSpecFPProgram("200.sixtrack");
  auto R = S.pipeline().runProgram(Prog);
  ASSERT_TRUE(R.has_value());

  MeasuredFrontier F =
      FrontierMeasurer(S).measure(Prog.Name, Prog.Loops, R->Profile);
  ASSERT_FALSE(F.Points.empty());
  EXPECT_GE(F.ScheduleHits, Prog.Loops.size());
}

// --- Structured measurement failures (SuiteFailure / PipelineError) --------

TEST(Pipeline, MeasurementFailureFillsPipelineError) {
  PipelineOptions Opts;
  Opts.MaxITSteps = 0; // no IT growth: the pressure loop cannot fit
  Session S(Opts, 1);
  PipelineError Err;
  auto R = S.pipeline().runProgram(pressureProgram(), &Err);
  EXPECT_FALSE(R.has_value());
  EXPECT_EQ(Err.Stage, PipelineStage::Measurement);
  EXPECT_NE(Err.Reason.find("unschedulable"), std::string::npos)
      << Err.Reason;
}

TEST(SuiteRunner, MeasurementFailurePropagatesMidSuite) {
  // A loop failing ScheduleValidator-level measurement mid-suite must
  // surface as a structured Measurement-stage SuiteFailure — in the
  // result and in the progress stream — while the healthy programs
  // before and after it still run.
  std::vector<BenchmarkProgram> Programs;
  Programs.push_back(buildSpecFPProgram("171.swim"));
  Programs.push_back(pressureProgram());
  Programs.push_back(buildSpecFPProgram("172.mgrid"));

  PipelineOptions Opts;
  Opts.MaxITSteps = 0;
  Session S(Opts, 2);
  SuiteOptions SO;
  std::mutex M;
  bool StreamedFailure = false;
  SO.OnProgramDone = [&](const SuiteProgress &P) {
    std::lock_guard<std::mutex> Lock(M);
    if (P.Program != "900.pressure")
      return;
    EXPECT_FALSE(P.Ok);
    ASSERT_NE(P.Failure, nullptr);
    EXPECT_EQ(P.Failure->Stage, PipelineStage::Measurement);
    StreamedFailure = true;
  };
  SuiteResult R = SuiteRunner(S).run(Programs, SO);

  ASSERT_EQ(R.Names.size(), 2u);
  EXPECT_EQ(R.Names[0], "171.swim");
  EXPECT_EQ(R.Names[1], "172.mgrid");
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Program, "900.pressure");
  EXPECT_EQ(R.Failures[0].Stage, PipelineStage::Measurement);
  EXPECT_NE(R.Failures[0].Reason.find("unschedulable"), std::string::npos);
  EXPECT_TRUE(StreamedFailure);
  EXPECT_EQ(R.numPrograms(), 3u);
}

} // namespace
