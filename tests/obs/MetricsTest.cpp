//===- tests/obs/MetricsTest.cpp - Metrics registry unit tests --------------===//
//
// Pins the metrics half of src/obs/: per-thread shards sum *exactly* at
// snapshot time (checked under real WorkerPool concurrency, with
// snapshots racing the recording — this test is part of the TSan CI
// job, which is what enforces the clean happens-before story the shard
// design promises), histogram bucketing/merging behaves as documented
// (mismatched bounds fold into the overflow bucket instead of silently
// misbinning), and the snapshot JSON is structurally sound.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "runtime/WorkerPool.h"

#include <gtest/gtest.h>

#include <thread>

using namespace hcvliw;

namespace {

TEST(Metrics, CounterSumsAreExactUnderConcurrency) {
  obs::MetricsRegistry Reg;
  WorkerPool Pool(4);
  constexpr size_t N = 10000;

  // Snapshots race the recording: snapshot() is documented safe while
  // recording continues. The values it returns mid-run are unasserted;
  // TSan asserts the synchronization.
  std::thread Racer([&Reg] {
    for (int I = 0; I < 50; ++I)
      (void)Reg.snapshot();
  });
  Pool.parallelFor(N, [&Reg](size_t Slot) {
    Reg.addCounter("race.ones");
    Reg.addCounter("race.slots", Slot);
  });
  Racer.join();

  obs::MetricsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.Counters.at("race.ones"), N);
  EXPECT_EQ(S.Counters.at("race.slots"), N * (N - 1) / 2);
  EXPECT_GE(Reg.numShards(), 1u);
  EXPECT_LE(Reg.numShards(), 5u); // 4 pool participants + the racer
}

TEST(Metrics, HistogramObservationsSumExactlyAcrossShards) {
  obs::MetricsRegistry Reg;
  WorkerPool Pool(4);
  constexpr size_t N = 2000;
  Pool.parallelFor(N, [&Reg](size_t Slot) {
    Reg.observeMs("race.ms", static_cast<double>(Slot % 7));
  });
  obs::MetricsSnapshot S = Reg.snapshot();
  const obs::HistogramData &H = S.Histograms.at("race.ms");
  EXPECT_EQ(H.Count, N);
  uint64_t BucketTotal = 0;
  for (uint64_t C : H.Counts)
    BucketTotal += C;
  EXPECT_EQ(BucketTotal, N);
  EXPECT_EQ(H.Min, 0.0);
  EXPECT_EQ(H.Max, 6.0);
}

TEST(Metrics, HistogramBucketing) {
  obs::HistogramData H;
  H.Bounds = {1.0, 10.0};
  H.Counts.assign(3, 0);
  H.observe(0.5);  // < 1        -> bucket 0
  H.observe(1.0);  // [1, 10)    -> bucket 1
  H.observe(5.0);  //            -> bucket 1
  H.observe(100.0); // >= 10     -> overflow
  EXPECT_EQ(H.Counts[0], 1u);
  EXPECT_EQ(H.Counts[1], 2u);
  EXPECT_EQ(H.Counts[2], 1u);
  EXPECT_EQ(H.Count, 4u);
  EXPECT_EQ(H.Min, 0.5);
  EXPECT_EQ(H.Max, 100.0);
  EXPECT_DOUBLE_EQ(H.Sum, 106.5);
}

TEST(Metrics, HistogramMergeMatchingBounds) {
  obs::HistogramData A, B;
  A.Bounds = B.Bounds = {1.0, 10.0};
  A.Counts.assign(3, 0);
  B.Counts.assign(3, 0);
  A.observe(0.5);
  B.observe(5.0);
  B.observe(50.0);
  A.merge(B);
  EXPECT_EQ(A.Count, 3u);
  EXPECT_EQ(A.Counts[0], 1u);
  EXPECT_EQ(A.Counts[1], 1u);
  EXPECT_EQ(A.Counts[2], 1u);
  EXPECT_EQ(A.Min, 0.5);
  EXPECT_EQ(A.Max, 50.0);
}

TEST(Metrics, HistogramMergeMismatchedBoundsFoldsToOverflow) {
  obs::HistogramData A, B;
  A.Bounds = {1.0, 10.0};
  A.Counts.assign(3, 0);
  B.Bounds = {2.0};
  B.Counts.assign(2, 0);
  B.observe(0.1);
  B.observe(3.0);
  A.observe(0.5);
  A.merge(B);
  // B's two observations cannot be rebinned; they land in A's overflow
  // bucket. The exact moments (count/sum/min/max) still merge exactly.
  EXPECT_EQ(A.Count, 3u);
  EXPECT_EQ(A.Counts[0], 1u);
  EXPECT_EQ(A.Counts[1], 0u);
  EXPECT_EQ(A.Counts[2], 2u);
  EXPECT_EQ(A.Min, 0.1);
  EXPECT_EQ(A.Max, 3.0);
  EXPECT_DOUBLE_EQ(A.Sum, 3.6);
}

TEST(Metrics, DefaultMsBoundsShape) {
  std::vector<double> B = obs::defaultMsBounds();
  ASSERT_GE(B.size(), 2u);
  for (size_t I = 1; I < B.size(); ++I)
    EXPECT_LT(B[I - 1], B[I]) << "bounds must ascend";
}

TEST(Metrics, GaugesAndReset) {
  obs::MetricsRegistry Reg;
  Reg.setGauge("pool.threads", 8.0);
  Reg.setGauge("pool.threads", 4.0); // last write wins
  Reg.addCounter("c", 3);
  obs::MetricsSnapshot S = Reg.snapshot();
  EXPECT_DOUBLE_EQ(S.Gauges.at("pool.threads"), 4.0);
  EXPECT_EQ(S.Counters.at("c"), 3u);

  Reg.reset();
  S = Reg.snapshot();
  EXPECT_TRUE(S.Counters.empty());
  EXPECT_TRUE(S.Gauges.empty());
  EXPECT_TRUE(S.Histograms.empty());
}

TEST(Metrics, SnapshotJsonShape) {
  obs::MetricsRegistry Reg;
  Reg.addCounter("cache.eval.hits", 12);
  Reg.setGauge("pool.threads", 2.0);
  Reg.observeMs("stage.loop_schedule.ms", 1.5);
  std::string J = Reg.snapshot().json();
  // Structural sanity (the full JSON grammar check lives in
  // TracerTest's JsonChecker; here the shape assertions suffice).
  EXPECT_EQ(J.front(), '{');
  EXPECT_EQ(J.back(), '}');
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"gauges\""), std::string::npos);
  EXPECT_NE(J.find("\"histograms\""), std::string::npos);
  EXPECT_NE(J.find("\"cache.eval.hits\": 12"), std::string::npos);
  EXPECT_NE(J.find("\"stage.loop_schedule.ms\""), std::string::npos);
  EXPECT_NE(J.find("\"mean\""), std::string::npos);
  EXPECT_NE(J.find("\"bounds\""), std::string::npos);
  size_t Braces = 0;
  for (char C : J) {
    if (C == '{')
      ++Braces;
    else if (C == '}') {
      ASSERT_GT(Braces, 0u);
      --Braces;
    }
  }
  EXPECT_EQ(Braces, 0u);
}

TEST(Metrics, EmptySnapshotJson) {
  obs::MetricsRegistry Reg;
  std::string J = Reg.snapshot().json();
  EXPECT_NE(J.find("\"counters\": {}"), std::string::npos);
}

} // namespace
