//===- tests/obs/TraceSuiteIdentityTest.cpp - Tracing never perturbs --------===//
//
// The observability layer's core contract, pinned end-to-end: a full
// SPECfp suite run with the session tracer *enabled* is bit-identical
// to the untraced run, at every thread count. Tracing reads clocks and
// appends to per-thread rings; nothing downstream reads trace state, so
// every measured number (ED2 ratios, execution times, energies, the
// deterministic scheduler-effort counters) must match exactly — the
// tracing analogue of ArenaSuiteTest's arena-inertness pin. Also pins
// that the traced runs actually recorded spans (when the tracer is
// compiled in) and that the exported trace names the suite stages.
//
//===----------------------------------------------------------------------===//

#include "runtime/SuiteRunner.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

/// Every schedule-derived number tracing could plausibly perturb,
/// compared bitwise (the ArenaSuiteTest comparator).
void expectSameMeasured(const SuiteResult &A, const SuiteResult &B) {
  ASSERT_EQ(A.Names, B.Names);
  ASSERT_EQ(A.Failures.size(), B.Failures.size());
  ASSERT_EQ(A.Details.size(), B.Details.size());
  for (size_t I = 0; I < A.Details.size(); ++I) {
    const ProgramRunResult &X = A.Details[I], &Y = B.Details[I];
    EXPECT_EQ(X.ED2Ratio, Y.ED2Ratio) << X.Name;
    EXPECT_EQ(X.HetMeasured.TexecNs, Y.HetMeasured.TexecNs) << X.Name;
    EXPECT_EQ(X.HetMeasured.Energy, Y.HetMeasured.Energy) << X.Name;
    EXPECT_EQ(X.HetMeasured.ED2, Y.HetMeasured.ED2) << X.Name;
    EXPECT_EQ(X.HomMeasured.TexecNs, Y.HomMeasured.TexecNs) << X.Name;
    EXPECT_EQ(X.HomMeasured.ED2, Y.HomMeasured.ED2) << X.Name;
    EXPECT_EQ(X.HetMeasured.SchedPlacements, Y.HetMeasured.SchedPlacements)
        << X.Name;
    EXPECT_EQ(X.HetMeasured.SchedEjections, Y.HetMeasured.SchedEjections)
        << X.Name;
    EXPECT_EQ(X.HetMeasured.SchedBudgetUsed, Y.HetMeasured.SchedBudgetUsed)
        << X.Name;
    EXPECT_EQ(X.HetMeasured.SchedITSteps, Y.HetMeasured.SchedITSteps)
        << X.Name;
    ASSERT_EQ(X.HetMeasured.Loops.size(), Y.HetMeasured.Loops.size());
    for (size_t L = 0; L < X.HetMeasured.Loops.size(); ++L) {
      EXPECT_EQ(X.HetMeasured.Loops[L].ITNs, Y.HetMeasured.Loops[L].ITNs);
      EXPECT_EQ(X.HetMeasured.Loops[L].TexecNs,
                Y.HetMeasured.Loops[L].TexecNs);
      EXPECT_EQ(X.HetMeasured.Loops[L].Comms, Y.HetMeasured.Loops[L].Comms);
    }
  }
}

TEST(TraceSuiteIdentity, TracedSuiteBitIdenticalAtEveryThreadCount) {
  PipelineOptions Opts;
  // The reference: untraced, serial.
  SuiteResult Baseline;
  {
    Session S(Opts, 1);
    Baseline = SuiteRunner(S).runSpecFP();
  }
  ASSERT_EQ(Baseline.Names.size(), 10u);
  EXPECT_TRUE(Baseline.Failures.empty());

  for (unsigned Threads : {1u, 2u, 4u}) {
    Session S(Opts, Threads);
    S.tracer().enable();
    SuiteResult Traced = SuiteRunner(S).runSpecFP();
    S.tracer().disable();
    expectSameMeasured(Baseline, Traced);
#ifndef HCVLIW_NO_TRACE
    // The run really was traced: spans from the suite level down to the
    // per-config measurement recorded, on no more rings than workers.
    EXPECT_GT(S.tracer().totalEvents(), 0u) << Threads;
    EXPECT_GE(S.tracer().numBuffers(), 1u);
    EXPECT_LE(S.tracer().numBuffers(), static_cast<size_t>(Threads));
    std::string J = S.tracer().chromeTraceJson();
    EXPECT_NE(J.find("suite.run"), std::string::npos);
    EXPECT_NE(J.find("program:"), std::string::npos);
    EXPECT_NE(J.find("measure.config:"), std::string::npos);
#endif
  }
}

TEST(TraceSuiteIdentity, MetricsRecordWithoutPerturbing) {
  // Same contract for the metrics registry: the session records
  // stage.program.ms (always on) and the cache counters; none of it
  // feeds back into results.
  PipelineOptions Opts;
  Session A(Opts, 2);
  SuiteResult RA = SuiteRunner(A).runSpecFP();
  obs::MetricsSnapshot Snap = A.metricsSnapshot();
  ASSERT_NE(Snap.Histograms.find("stage.program.ms"),
            Snap.Histograms.end());
  EXPECT_EQ(Snap.Histograms.at("stage.program.ms").Count, 10u);
  EXPECT_NE(Snap.Gauges.find("cache.eval.hits"), Snap.Gauges.end());
  EXPECT_NE(Snap.Counters.find("measure.configs"), Snap.Counters.end());

  Session B(Opts, 2);
  SuiteResult RB = SuiteRunner(B).runSpecFP();
  expectSameMeasured(RA, RB);
}

} // namespace
