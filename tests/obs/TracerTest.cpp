//===- tests/obs/TracerTest.cpp - Span tracer unit tests --------------------===//
//
// Pins the tracer's mechanics: spans record exactly when the tracer is
// enabled, null/disabled spans are inert, a full ring wraps by
// overwriting the oldest events (with the loss reported), long names
// truncate safely, and the exported Chrome-trace-event JSON is
// well-formed (checked with a real — if minimal — JSON parser, not
// substring matching) with the fields Perfetto requires on every event
// plus the build-provenance header. The well-formedness test also holds
// under HCVLIW_NO_TRACE, where the export is an empty-but-valid trace.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

//===----------------------------------------------------------------------===//
// Minimal recursive-descent JSON well-formedness checker. Accepts
// exactly RFC 8259 structure (objects, arrays, strings with escapes,
// numbers, true/false/null); no semantic model, just validity.
//===----------------------------------------------------------------------===//

class JsonChecker {
  const char *P, *End;

  void ws() {
    while (P != End &&
           (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool lit(const char *S) {
    size_t N = std::strlen(S);
    if (static_cast<size_t>(End - P) < N || std::strncmp(P, S, N) != 0)
      return false;
    P += N;
    return true;
  }
  bool string() {
    if (P == End || *P != '"')
      return false;
    ++P;
    while (P != End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == End)
          return false;
      }
      ++P;
    }
    if (P == End)
      return false;
    ++P; // closing quote
    return true;
  }
  bool number() {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    while (P != End && ((*P >= '0' && *P <= '9') || *P == '.' ||
                        *P == 'e' || *P == 'E' || *P == '+' || *P == '-'))
      ++P;
    return P != Start;
  }
  bool value() {
    ws();
    if (P == End)
      return false;
    switch (*P) {
    case '{': {
      ++P;
      ws();
      if (P != End && *P == '}') {
        ++P;
        return true;
      }
      while (true) {
        ws();
        if (!string())
          return false;
        ws();
        if (P == End || *P != ':')
          return false;
        ++P;
        if (!value())
          return false;
        ws();
        if (P != End && *P == ',') {
          ++P;
          continue;
        }
        break;
      }
      if (P == End || *P != '}')
        return false;
      ++P;
      return true;
    }
    case '[': {
      ++P;
      ws();
      if (P != End && *P == ']') {
        ++P;
        return true;
      }
      while (true) {
        if (!value())
          return false;
        ws();
        if (P != End && *P == ',') {
          ++P;
          continue;
        }
        break;
      }
      if (P == End || *P != ']')
        return false;
      ++P;
      return true;
    }
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }

public:
  explicit JsonChecker(const std::string &S)
      : P(S.data()), End(S.data() + S.size()) {}

  bool valid() {
    if (!value())
      return false;
    ws();
    return P == End;
  }
};

TEST(JsonChecker, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker("{\"a\": [1, -2.5e3, \"x\\\"y\"], "
                          "\"b\": {\"c\": true, \"d\": null}}")
                  .valid());
  EXPECT_FALSE(JsonChecker("{\"a\": }").valid());
  EXPECT_FALSE(JsonChecker("{\"a\": 1,}").valid());
  EXPECT_FALSE(JsonChecker("{\"a\": 1} trailing").valid());
  EXPECT_FALSE(JsonChecker("{\"unterminated).valid()").valid());
}

//===----------------------------------------------------------------------===//
// Exported trace shape: valid JSON, Perfetto-required event fields,
// build-provenance header. Holds compiled in and compiled out.
//===----------------------------------------------------------------------===//

TEST(Tracer, ChromeTraceJsonIsWellFormed) {
  obs::Tracer Tr;
  Tr.enable();
  {
    obs::Span Sp(&Tr, "test.span:", "suffix");
    Sp.arg("answer", 42);
  }
  Tr.disable();
  std::string J = Tr.chromeTraceJson();
  EXPECT_TRUE(JsonChecker(J).valid()) << J;
  // The two top-level objects of the trace-event format.
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"otherData\""), std::string::npos);
  // Build provenance rides in the header.
  EXPECT_NE(J.find("\"build\""), std::string::npos);
  EXPECT_NE(J.find("\"git_sha\""), std::string::npos);
}

#ifndef HCVLIW_NO_TRACE

TEST(Tracer, SpanRecordsOnlyWhenEnabled) {
  obs::Tracer Tr;
  { obs::Span Sp(&Tr, "before.enable"); }
  EXPECT_EQ(Tr.totalEvents(), 0u);

  Tr.enable();
  {
    obs::Span Sp(&Tr, "while.enabled");
    EXPECT_TRUE(Sp.active());
  }
  EXPECT_EQ(Tr.totalEvents(), 1u);
  EXPECT_EQ(Tr.numBuffers(), 1u);

  Tr.disable();
  {
    obs::Span Sp(&Tr, "after.disable");
    EXPECT_FALSE(Sp.active());
  }
  EXPECT_EQ(Tr.totalEvents(), 1u);

  // Null tracer: the documented one-branch no-op.
  obs::Span Null(nullptr, "null.tracer");
  EXPECT_FALSE(Null.active());
}

TEST(Tracer, EventFieldsReachTheExport) {
  obs::Tracer Tr;
  Tr.enable();
  {
    obs::Span Sp(&Tr, "outer");
    obs::Span Inner(&Tr, "measure.config:", "het");
    Inner.arg("loops", 7);
    Inner.arg("failures", 0);
  }
  Tr.disable();
  std::string J = Tr.chromeTraceJson();
  ASSERT_TRUE(JsonChecker(J).valid()) << J;
  // Complete events with the required fields.
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"ts\""), std::string::npos);
  EXPECT_NE(J.find("\"dur\""), std::string::npos);
  EXPECT_NE(J.find("\"pid\""), std::string::npos);
  EXPECT_NE(J.find("\"tid\""), std::string::npos);
  // Name + suffix concatenation and args survive.
  EXPECT_NE(J.find("measure.config:het"), std::string::npos);
  EXPECT_NE(J.find("\"loops\": 7"), std::string::npos);
  // Inner closes before outer: both events exist.
  EXPECT_EQ(Tr.totalEvents(), 2u);
}

TEST(Tracer, RingWrapsOverwritingOldest) {
  obs::Tracer Tr;
  obs::TraceOptions O;
  O.BufferEvents = 16; // the smallest ring enable() allows
  Tr.enable(O);
  for (int I = 0; I < 40; ++I) {
    obs::Span Sp(&Tr, "w", std::to_string(I));
    (void)Sp;
  }
  Tr.disable();
  EXPECT_EQ(Tr.totalEvents(), 40u);
  EXPECT_EQ(Tr.droppedEvents(), 24u);
  std::string J = Tr.chromeTraceJson();
  ASSERT_TRUE(JsonChecker(J).valid()) << J;
  // The newest sixteen survive; the oldest are gone.
  EXPECT_NE(J.find("\"w39\""), std::string::npos);
  EXPECT_NE(J.find("\"w24\""), std::string::npos);
  EXPECT_EQ(J.find("\"w0\""), std::string::npos);
  EXPECT_EQ(J.find("\"w23\""), std::string::npos);
  // The exporter reports the loss.
  EXPECT_NE(J.find("\"dropped_events\": 24"), std::string::npos);
}

TEST(Tracer, LongNamesTruncateSafely) {
  obs::Tracer Tr;
  Tr.enable();
  std::string Long(200, 'x');
  {
    obs::Span Sp(&Tr, "prefix.that.is.fairly.long:", Long);
    (void)Sp;
  }
  Tr.disable();
  EXPECT_EQ(Tr.totalEvents(), 1u);
  std::string J = Tr.chromeTraceJson();
  EXPECT_TRUE(JsonChecker(J).valid()) << J;
  // Truncated to the fixed record capacity, not the full 200+ chars.
  EXPECT_EQ(J.find(Long), std::string::npos);
}

TEST(Tracer, ReenableResetsTheCapture) {
  obs::Tracer Tr;
  Tr.enable();
  { obs::Span Sp(&Tr, "first.capture"); }
  Tr.disable();
  EXPECT_EQ(Tr.totalEvents(), 1u);
  Tr.enable();
  EXPECT_EQ(Tr.totalEvents(), 0u); // fresh epoch, fresh buffers
  { obs::Span Sp(&Tr, "second.capture"); }
  Tr.disable();
  std::string J = Tr.chromeTraceJson();
  EXPECT_NE(J.find("second.capture"), std::string::npos);
  EXPECT_EQ(J.find("first.capture"), std::string::npos);
}

#else // HCVLIW_NO_TRACE

TEST(Tracer, CompiledOutStubsAreInert) {
  obs::Tracer Tr;
  Tr.enable();
  {
    obs::Span Sp(&Tr, "never.recorded");
    EXPECT_FALSE(Sp.active());
    Sp.arg("ignored", 1);
  }
  EXPECT_EQ(Tr.totalEvents(), 0u);
  EXPECT_EQ(Tr.numBuffers(), 0u);
  std::string J = Tr.chromeTraceJson();
  EXPECT_TRUE(JsonChecker(J).valid()) << J;
  EXPECT_NE(J.find("\"compiled_out\": true"), std::string::npos);
}

#endif // HCVLIW_NO_TRACE

} // namespace
