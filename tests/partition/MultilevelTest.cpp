//===- tests/partition/MultilevelTest.cpp - Coarsen/refine hierarchy --------===//
//
// Pins the multilevel partitioner's structural invariants — level sizes
// shrink geometrically, every recorded level is a valid partition of
// the loop, pins survive coarsening, refinement never worsens the
// tracked objective — and the headline behavioral guarantee of the
// hierarchy: loops far beyond the old ~200-op ceiling schedule
// end-to-end through the real partitioner, validator-clean, with
// results bit-identical across worker thread counts.
//
//===----------------------------------------------------------------------===//

#include "mcd/DomainPlanner.h"
#include "partition/LoopScheduler.h"
#include "partition/MultilevelGraph.h"
#include "partition/Partitioner.h"
#include "partition/ScheduleScratch.h"
#include "runtime/WorkerPool.h"
#include "sched/ScheduleValidator.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

#include <map>

using namespace hcvliw;

namespace {

HeteroConfig heteroConfig(const MachineDescription &M) {
  HeteroConfig C = HeteroConfig::reference(M);
  C.Clusters[0].PeriodNs = Rational(9, 10);
  for (unsigned I = 1; I < C.numClusters(); ++I)
    C.Clusters[I].PeriodNs = Rational(27, 20);
  C.Icn.PeriodNs = Rational(9, 10);
  C.Cache.PeriodNs = Rational(9, 10);
  return C;
}

/// The machine of the big-loop fixtures: the paper machine with its
/// register files scaled for the body size (see bigLoopRegisters).
MachineDescription bigLoopMachine(unsigned Ops) {
  MachineDescription M = MachineDescription::paperDefault();
  for (auto &Cl : M.Clusters)
    Cl.Registers = bigLoopRegisters(Ops);
  return M;
}

/// Everything MultilevelGraph::build consumes, derived the same way
/// partitionLoop derives it (no pre-placement: all-singleton groups).
struct CoarsenFixture {
  Loop L;
  DDG G;
  MachineDescription M;
  MinDistMatrix Slack;
  MultilevelGraph ML;

  explicit CoarsenFixture(Loop TheLoop, unsigned TargetMacros,
                          std::vector<std::vector<unsigned>> Groups = {},
                          std::vector<int> Pins = {})
      : L(std::move(TheLoop)), M(bigLoopMachine(
            static_cast<unsigned>(L.Ops.size()))) {
    G = DDG::build(L);
    RecurrenceInfo Recs = analyzeRecurrences(G, M.Isa.nodeLatencies(L));
    MinDistMatrix::computeInto(Slack, G, M.Isa.nodeLatencies(L),
                               std::max<int64_t>(Recs.RecMII, 1));
    ML.build(L, G, M, Groups, Pins, Slack, TargetMacros);
  }
};

TEST(Multilevel, LevelSizesShrinkGeometrically) {
  CoarsenFixture F(makeUnrolledKernelLoop("geo", 384), /*TargetMacros=*/4);
  ASSERT_GE(F.ML.numLevels(), 3u);
  unsigned N = static_cast<unsigned>(F.L.Ops.size());
  EXPECT_EQ(F.ML.level(0).NumMacros, N); // finest = all singletons
  for (unsigned I = 1; I < F.ML.numLevels(); ++I) {
    unsigned Prev = F.ML.level(I - 1).NumMacros;
    unsigned Cur = F.ML.level(I).NumMacros;
    EXPECT_LT(Cur, Prev) << "level " << I;
    // The recording rule: a level is only recorded once it has shrunk
    // to <= 3/4 of the previous one (or coarsening stalled/hit target,
    // which only the last level may claim).
    if (I + 1 < F.ML.numLevels())
      EXPECT_LE(Cur, std::max(4u, Prev * 3 / 4)) << "level " << I;
  }
  EXPECT_LE(F.ML.coarsest().NumMacros, N / 2);
  const MultilevelGraph::BuildStats &BS = F.ML.buildStats();
  EXPECT_EQ(BS.Levels, F.ML.numLevels());
  EXPECT_GT(BS.MatchedPairs, 0u);
  EXPECT_GE(BS.Rounds, BS.Levels - 1);
}

TEST(Multilevel, EveryLevelIsAValidPartitionOfTheLoop) {
  CoarsenFixture F(makeUnrolledKernelLoop("valid", 320), /*TargetMacros=*/4);
  unsigned N = static_cast<unsigned>(F.L.Ops.size());

  // Loop-level totals the per-macro aggregates must add up to.
  std::vector<unsigned> KindTotal(NumFUKinds, 0);
  double WeightTotal = 0;
  for (unsigned Nd = 0; Nd < N; ++Nd) {
    ++KindTotal[static_cast<unsigned>(fuKindOf(F.L.Ops[Nd].Op))];
    WeightTotal += F.M.Isa.energy(F.L.Ops[Nd].Op);
  }

  for (unsigned LI = 0; LI < F.ML.numLevels(); ++LI) {
    const CoarseLevel &Lvl = F.ML.level(LI);
    SCOPED_TRACE(testing::Message() << "level " << LI);
    ASSERT_EQ(Lvl.MacroOf.size(), N);
    ASSERT_EQ(Lvl.Rep.size(), Lvl.NumMacros);
    ASSERT_EQ(Lvl.Size.size(), Lvl.NumMacros);
    ASSERT_EQ(Lvl.Weight.size(), Lvl.NumMacros);
    ASSERT_EQ(Lvl.Pin.size(), Lvl.NumMacros);
    ASSERT_EQ(Lvl.FUCounts.size(),
              static_cast<size_t>(Lvl.NumMacros) * NumFUKinds);

    // MacroOf is a total map onto [0, NumMacros); Size/Rep agree with
    // it; FUCounts and Weight aggregate exactly the members.
    std::vector<unsigned> SeenSize(Lvl.NumMacros, 0);
    std::vector<unsigned> FirstMember(Lvl.NumMacros, ~0u);
    std::vector<unsigned> Kinds(static_cast<size_t>(Lvl.NumMacros) *
                                NumFUKinds);
    std::vector<double> W(Lvl.NumMacros, 0.0);
    for (unsigned Nd = 0; Nd < N; ++Nd) {
      unsigned Mac = Lvl.MacroOf[Nd];
      ASSERT_LT(Mac, Lvl.NumMacros);
      if (SeenSize[Mac]++ == 0)
        FirstMember[Mac] = Nd;
      ++Kinds[static_cast<size_t>(Mac) * NumFUKinds +
              static_cast<unsigned>(fuKindOf(F.L.Ops[Nd].Op))];
      W[Mac] += F.M.Isa.energy(F.L.Ops[Nd].Op);
    }
    unsigned SizeSum = 0;
    std::vector<unsigned> KindSum(NumFUKinds, 0);
    double WeightSum = 0;
    for (unsigned Mac = 0; Mac < Lvl.NumMacros; ++Mac) {
      EXPECT_GT(Lvl.Size[Mac], 0u) << "empty macro " << Mac;
      EXPECT_EQ(Lvl.Size[Mac], SeenSize[Mac]) << Mac;
      EXPECT_EQ(Lvl.Rep[Mac], FirstMember[Mac]) << Mac;
      EXPECT_DOUBLE_EQ(Lvl.Weight[Mac], W[Mac]) << Mac;
      for (unsigned K = 0; K < NumFUKinds; ++K) {
        EXPECT_EQ(Lvl.fuCount(Mac, K),
                  Kinds[static_cast<size_t>(Mac) * NumFUKinds + K])
            << Mac;
        KindSum[K] += Lvl.fuCount(Mac, K);
      }
      SizeSum += Lvl.Size[Mac];
      WeightSum += Lvl.Weight[Mac];
    }
    EXPECT_EQ(SizeSum, N);
    EXPECT_EQ(KindSum, KindTotal);
    EXPECT_NEAR(WeightSum, WeightTotal, 1e-9 * WeightTotal);

    // CSR adjacency: monotone offsets, in-range targets, no self
    // edges, and symmetric (same multiplicity and slack both ways).
    ASSERT_EQ(Lvl.AdjStart.size(), Lvl.NumMacros + 1u);
    ASSERT_EQ(Lvl.AdjStart.back(), Lvl.AdjMacro.size());
    ASSERT_EQ(Lvl.AdjMacro.size(), Lvl.AdjWeight.size());
    ASSERT_EQ(Lvl.AdjMacro.size(), Lvl.AdjSlack.size());
    std::map<std::pair<unsigned, unsigned>, std::pair<unsigned, int64_t>>
        Half;
    for (unsigned Mac = 0; Mac < Lvl.NumMacros; ++Mac) {
      ASSERT_LE(Lvl.AdjStart[Mac], Lvl.AdjStart[Mac + 1]);
      for (unsigned I = Lvl.AdjStart[Mac]; I < Lvl.AdjStart[Mac + 1]; ++I) {
        unsigned To = Lvl.AdjMacro[I];
        ASSERT_LT(To, Lvl.NumMacros);
        EXPECT_NE(To, Mac) << "self edge on macro " << Mac;
        Half[{Mac, To}] = {Lvl.AdjWeight[I], Lvl.AdjSlack[I]};
      }
    }
    for (const auto &KV : Half) {
      auto Rev = Half.find({KV.first.second, KV.first.first});
      ASSERT_NE(Rev, Half.end())
          << "asymmetric edge " << KV.first.first << "<->"
          << KV.first.second;
      EXPECT_EQ(Rev->second, KV.second);
    }
  }
}

TEST(Multilevel, PinsSurviveCoarseningAndNeverMerge) {
  Loop L = makeUnrolledKernelLoop("pins", 160);
  // Two pre-fused groups pinned to different clusters (the shape the
  // critical-recurrence pre-placement produces).
  std::vector<std::vector<unsigned>> Groups = {{0, 1, 2}, {3, 4}};
  std::vector<int> Pins = {2, 0};
  CoarsenFixture F(std::move(L), /*TargetMacros=*/4, Groups, Pins);
  for (unsigned LI = 0; LI < F.ML.numLevels(); ++LI) {
    const CoarseLevel &Lvl = F.ML.level(LI);
    SCOPED_TRACE(testing::Message() << "level " << LI);
    unsigned MacA = Lvl.MacroOf[0], MacB = Lvl.MacroOf[3];
    // Group members stay fused...
    EXPECT_EQ(Lvl.MacroOf[1], MacA);
    EXPECT_EQ(Lvl.MacroOf[2], MacA);
    EXPECT_EQ(Lvl.MacroOf[4], MacB);
    // ...their macros keep their pins and never merge with each other.
    EXPECT_NE(MacA, MacB);
    EXPECT_EQ(Lvl.Pin[MacA], 2);
    EXPECT_EQ(Lvl.Pin[MacB], 0);
  }
}

TEST(Multilevel, RefinementNeverWorsensTrackedObjective) {
  // Exercises both refinement regimes: the 64-op loop stays below
  // MaxRefineMacros everywhere (exact greedy only), the 320-op one has
  // levels above it (boundary FM with guarded acceptance).
  for (unsigned Ops : {64u, 320u}) {
    SCOPED_TRACE(testing::Message() << Ops << " ops");
    Loop L = makeUnrolledKernelLoop("mono", Ops);
    MachineDescription M = bigLoopMachine(Ops);
    HeteroConfig C = heteroConfig(M);
    DDG G = DDG::build(L);
    RecurrenceInfo Recs = analyzeRecurrences(G, M.Isa.nodeLatencies(L));
    DomainPlanner Planner(M, C, FrequencyMenu::continuous());

    // Relax the IT until the partitioner finds room (the Figure 5
    // driver's retry loop); the monotonicity contract holds at every
    // attempt, feasible or not.
    std::optional<Partition> P;
    PartitionStats Stats;
    for (int64_t IT : {8, 16, 32, 64}) {
      auto Plan = Planner.planForIT(Rational(IT));
      ASSERT_TRUE(Plan.has_value());
      PartitionContext Ctx;
      Ctx.L = &L;
      Ctx.G = &G;
      Ctx.M = &M;
      Ctx.Plan = &*Plan;
      Ctx.Recs = &Recs;
      Ctx.TripCount = L.TripCount;
      Stats = PartitionStats();
      Ctx.Stats = &Stats;
      PartitionerOptions O;
      O.ED2Objective = false; // the baseline objective needs no models
      P = partitionLoop(Ctx, O);
      EXPECT_LE(Stats.FinalScore, Stats.InitialScore);
      if (P.has_value())
        break;
    }
    ASSERT_TRUE(P.has_value());
    EXPECT_EQ(Stats.Runs, 1u);
    EXPECT_EQ(Stats.CoarsenBuilds, 1u);
    EXPECT_GT(Stats.Levels, 1u);
    EXPECT_GT(Stats.MatchedPairs, 0u);
    EXPECT_LE(Stats.FinalScore, Stats.InitialScore);
    if (Ops == 320u)
      EXPECT_GT(Stats.FMPasses, 0u); // the FM regime really ran
  }
}

/// Schedules one big-loop fixture end-to-end; EXPECTs success and a
/// validator-clean, pressure-feasible schedule, and returns the result.
LoopScheduleResult scheduleBigLoop(unsigned Ops, unsigned Try,
                                   ScheduleScratch *Scratch = nullptr) {
  Loop L = makeUnrolledKernelLoop("big", Ops, Try);
  MachineDescription M = bigLoopMachine(Ops);
  LoopScheduler S(M, heteroConfig(M));
  LoopScheduleResult R = S.schedule(L, nullptr, nullptr, Scratch);
  EXPECT_TRUE(R.Success) << Ops << " ops: " << R.failureSummary();
  if (R.Success) {
    ValidatorOptions VO;
    VO.CheckRegisterPressure = false; // the exact model below replaces it
    EXPECT_EQ(validateSchedule(M, R.PG, R.Sched, VO), "");
    EXPECT_TRUE(
        computeRegisterPressure(R.PG, R.Sched).fits(M));
  }
  return R;
}

TEST(BigLoop, FiveHundredTwelveOpsSchedulesThroughRealPartitioner) {
  LoopScheduleResult R = scheduleBigLoop(512, 0);
  EXPECT_GT(R.Placements, 512u);
}

TEST(BigLoop, ThousandOpsSchedulesThroughRealPartitioner) {
  // The acceptance bar of the whole hierarchy: a 1024-op loop places
  // and schedules with no cyclic-fixture fallback.
  LoopScheduleResult R = scheduleBigLoop(1024, 0);
  EXPECT_GT(R.Placements, 1024u);
}

TEST(BigLoop, BitIdenticalAcrossWorkerThreadCounts) {
  // Schedules a batch of big loops through per-worker arenas under
  // WorkerPool fan-out; slots, units, pressure and effort counters must
  // be bit-identical for Threads in {1, 2, 4}.
  struct Job {
    unsigned Ops, Try;
  };
  const std::vector<Job> Jobs = {{512, 0}, {512, 1}, {768, 0}};

  auto runAll = [&](unsigned Threads) {
    std::vector<LoopScheduleResult> Out(Jobs.size());
    WorkerPool Pool(Threads);
    ScheduleScratchPool Arenas;
    Pool.parallelFor(Jobs.size(), [&](size_t I) {
      Out[I] = scheduleBigLoop(Jobs[I].Ops, Jobs[I].Try,
                               &Arenas.forThisThread());
    });
    return Out;
  };

  std::vector<LoopScheduleResult> Serial = runAll(1);
  for (unsigned Threads : {2u, 4u}) {
    SCOPED_TRACE(testing::Message() << Threads << " threads");
    std::vector<LoopScheduleResult> Par = runAll(Threads);
    ASSERT_EQ(Par.size(), Serial.size());
    for (size_t I = 0; I < Serial.size(); ++I) {
      const LoopScheduleResult &A = Serial[I], &B = Par[I];
      SCOPED_TRACE(testing::Message() << Jobs[I].Ops << " ops try "
                                      << Jobs[I].Try);
      ASSERT_EQ(A.Success, B.Success);
      ASSERT_EQ(A.Sched.Nodes.size(), B.Sched.Nodes.size());
      for (size_t S = 0; S < A.Sched.Nodes.size(); ++S) {
        EXPECT_EQ(A.Sched.Nodes[S].Slot, B.Sched.Nodes[S].Slot);
        EXPECT_EQ(A.Sched.Nodes[S].Unit, B.Sched.Nodes[S].Unit);
      }
      EXPECT_EQ(A.Pressure.MaxLive, B.Pressure.MaxLive);
      EXPECT_EQ(A.ITSteps, B.ITSteps);
      EXPECT_EQ(A.Placements, B.Placements);
      EXPECT_EQ(A.Ejections, B.Ejections);
      EXPECT_EQ(A.BudgetUsed, B.BudgetUsed);
    }
  }
}

} // namespace
