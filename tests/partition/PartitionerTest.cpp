//===- tests/partition/PartitionerTest.cpp - Multilevel partitioner ---------===//

#include "configsel/Scaling.h"
#include "mcd/DomainPlanner.h"
#include "partition/LoopScheduler.h"
#include "partition/Partitioner.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace hcvliw;

namespace {

struct PartitionFixture {
  Loop L;
  DDG G;
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C;
  RecurrenceInfo Recs;
  MachinePlan Plan;

  PartitionFixture(Loop TheLoop, bool Heterogeneous, const Rational &IT)
      : L(std::move(TheLoop)) {
    G = DDG::build(L);
    C = HeteroConfig::reference(M);
    if (Heterogeneous) {
      C.Clusters[0].PeriodNs = Rational(9, 10);
      for (unsigned I = 1; I < 4; ++I)
        C.Clusters[I].PeriodNs = Rational(27, 20);
      C.Icn.PeriodNs = Rational(9, 10);
      C.Cache.PeriodNs = Rational(9, 10);
    }
    Recs = analyzeRecurrences(G, M.Isa.nodeLatencies(L));
    DomainPlanner Planner(M, C, FrequencyMenu::continuous());
    auto P = Planner.planForIT(IT);
    EXPECT_TRUE(P.has_value());
    Plan = *P;
  }

  PartitionContext ctx() const {
    PartitionContext Ctx;
    Ctx.L = &L;
    Ctx.G = &G;
    Ctx.M = &M;
    Ctx.Plan = &Plan;
    Ctx.Recs = &Recs;
    Ctx.TripCount = L.TripCount;
    return Ctx;
  }
};

TEST(Partitioner, ProducesCompleteAssignment) {
  PartitionFixture S(makeStreamLoop("s", 5, 16, 1.0), false, Rational(4));
  PartitionerOptions O;
  O.ED2Objective = false;
  auto P = partitionLoop(S.ctx(), O);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->size(), S.G.size());
  for (unsigned N = 0; N < P->size(); ++N)
    EXPECT_LT(P->cluster(N), 4u);
}

TEST(Partitioner, CriticalRecurrenceNotSplitAndHostFeasible) {
  // recMII 12 chain; at IT 10.8 only the fast cluster (II 12) fits it.
  PartitionFixture S(makeChainRecurrenceLoop("r", 1, 2, 1, 3, 16, 1.0), true,
          Rational(54, 5));
  PartitionerOptions O;
  O.ED2Objective = false;
  auto P = partitionLoop(S.ctx(), O);
  ASSERT_TRUE(P.has_value());
  ASSERT_FALSE(S.Recs.Recurrences.empty());
  const Recurrence &R = S.Recs.Recurrences[0];
  unsigned Home = P->cluster(R.Nodes[0]);
  for (unsigned N : R.Nodes)
    EXPECT_EQ(P->cluster(N), Home);
  EXPECT_GE(S.Plan.Clusters[Home].II, R.RecMII);
}

TEST(Partitioner, PrePlacementPicksSlowestFeasible) {
  // recMII 3 recurrence fits everywhere... use one that fits only in
  // clusters with II >= 6 but *all* clusters qualify: it must go to a
  // slow cluster (larger period) when pinning triggers.
  PartitionFixture S(makeWideRecurrenceLoop("r", 2, 1, 2, 16, 1.0), true,
          Rational(54, 5)); // fast II 12, slow II 8; recMII 6
  // recMII 6 < slow II 8: no pinning needed; the balance objective may
  // place it anywhere. Force a tighter IT where slow II < 6.
  DomainPlanner Planner(S.M, S.C, FrequencyMenu::continuous());
  auto Tight = Planner.planForIT(Rational(27, 5)); // fast 6, slow 4
  ASSERT_TRUE(Tight.has_value());
  PartitionContext Ctx = S.ctx();
  Ctx.Plan = &*Tight;
  PartitionerOptions O;
  O.ED2Objective = false;
  auto P = partitionLoop(Ctx, O);
  ASSERT_TRUE(P.has_value());
  const Recurrence &R = S.Recs.Recurrences[0];
  // Only the fast cluster (II 6) accommodates recMII 6.
  for (unsigned N : R.Nodes)
    EXPECT_EQ(P->cluster(N), 0u);
}

TEST(Partitioner, ReturnsNulloptWhenRecurrenceFitsNowhere) {
  PartitionFixture S(makeWideRecurrenceLoop("r", 4, 1, 1, 16, 1.0), true,
          Rational(9, 2)); // recMII 12; fast II 5, slow II 3
  PartitionerOptions O;
  O.ED2Objective = false;
  EXPECT_FALSE(partitionLoop(S.ctx(), O).has_value());
}

TEST(Partitioner, SingleClusterMachineTrivial) {
  MachineDescription M1 = MachineDescription::paperDefault(1, 1);
  Loop L = makeStreamLoop("s", 2, 16, 1.0);
  DDG G = DDG::build(L);
  HeteroConfig C = HeteroConfig::reference(M1);
  RecurrenceInfo Recs = analyzeRecurrences(G, M1.Isa.nodeLatencies(L));
  DomainPlanner Planner(M1, C, FrequencyMenu::continuous());
  auto Plan = Planner.planForIT(Rational(6));
  PartitionContext Ctx;
  Ctx.L = &L;
  Ctx.G = &G;
  Ctx.M = &M1;
  Ctx.Plan = &*Plan;
  Ctx.Recs = &Recs;
  Ctx.TripCount = 16;
  auto P = partitionLoop(Ctx, PartitionerOptions());
  ASSERT_TRUE(P.has_value());
  for (unsigned N = 0; N < P->size(); ++N)
    EXPECT_EQ(P->cluster(N), 0u);
}

TEST(Partitioner, ED2ObjectiveNotWorseThanBalanceUnderED2Score) {
  // Scoring the ED2-refined partition with the ED2 metric must not be
  // worse than scoring the balance-refined one with the same metric.
  PartitionFixture S(makeChainRecurrenceLoop("r", 1, 2, 1, 4, 64, 1.0), true,
          Rational(54, 5));
  ActivityCounts Ref;
  Ref.WeightedIns = 1000;
  Ref.Comms = 20;
  Ref.MemAccesses = 300;
  EnergyModel Energy(EnergyBreakdown(), Ref, 1e5, 4);
  TechnologyModel Tech = TechnologyModel::paperDefault();
  HeteroScaling Scaling = scalingForConfig(S.C, S.M, Tech);

  PartitionContext Ctx = S.ctx();
  Ctx.Energy = &Energy;
  Ctx.Scaling = &Scaling;

  PartitionerOptions EO;
  EO.ED2Objective = true;
  PartitionerOptions BO;
  BO.ED2Objective = false;

  auto PE = partitionLoop(Ctx, EO);
  auto PB = partitionLoop(Ctx, BO);
  ASSERT_TRUE(PE && PB);
  double ScoreE = scorePartition(Ctx, EO, *PE);
  double ScoreB = scorePartition(Ctx, EO, *PB);
  EXPECT_LE(ScoreE, ScoreB * 1.0001);
  EXPECT_TRUE(std::isfinite(ScoreE));
}

TEST(Partitioner, AblationPrePlaceOffStillValid) {
  PartitionFixture S(makeChainRecurrenceLoop("r", 1, 2, 1, 3, 16, 1.0), true,
          Rational(54, 5));
  PartitionerOptions O;
  O.ED2Objective = false;
  O.PrePlaceRecurrences = false;
  auto P = partitionLoop(S.ctx(), O);
  // Refinement may still find a feasible assignment; if it does, it
  // must be complete.
  if (P.has_value()) {
    EXPECT_EQ(P->size(), S.G.size());
  }
}

TEST(LoopSchedulerDriver, ReportsFailureOnImpossibleLoop) {
  // More live values than total registers at any II: driver must give
  // up with a failure string rather than loop forever.
  MachineDescription M = MachineDescription::paperDefault();
  for (auto &Cl : M.Clusters)
    Cl.Registers = 1;
  Loop L = makeStreamLoop("wide", 8, 16, 1.0);
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduleOptions O;
  O.MaxITSteps = 4;
  LoopScheduler Sched(M, C, O);
  LoopScheduleResult R = Sched.schedule(L);
  if (!R.Success) {
    EXPECT_FALSE(R.Failure.empty());
  }
}

TEST(LoopSchedulerDriver, ITStepsCountsIncreases) {
  Loop L = makeWideRecurrenceLoop("r", 8, 2, 2, 16, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success) << R.Failure;
  // The zero-slack wide recurrence cannot schedule at MIT; at least one
  // IT increase must have happened.
  EXPECT_GE(R.ITSteps, 1u);
  EXPECT_GT(R.Sched.Plan.ITNs, R.MITNs);
}

} // namespace
