//===- tests/power/PowerTest.cpp - Energy and alpha-power models ------------===//

#include "power/AlphaPowerModel.h"
#include "power/EnergyModel.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

AlphaPowerModel referenceModel() {
  return AlphaPowerModel(TechnologyModel::paperDefault(), /*RefFreqGHz=*/1.0,
                         /*RefVdd=*/1.0, /*RefVth=*/0.25);
}

TEST(AlphaPower, ReferenceIsFixedPoint) {
  AlphaPowerModel M = referenceModel();
  EXPECT_NEAR(M.fmaxGHz(1.0, 0.25), 1.0, 1e-12);
}

TEST(AlphaPower, VthInversionRoundTrips) {
  AlphaPowerModel M = referenceModel();
  for (double F : {0.6, 0.8, 1.0, 1.1})
    for (double Vdd : {0.8, 1.0, 1.2}) {
      auto Vth = M.vthForFrequency(F, Vdd);
      if (!Vth)
        continue;
      EXPECT_NEAR(M.fmaxGHz(Vdd, *Vth), F, 1e-9)
          << "f=" << F << " Vdd=" << Vdd;
    }
}

TEST(AlphaPower, HigherVddAllowsHigherVth) {
  AlphaPowerModel M = referenceModel();
  auto VthLo = M.vthForFrequency(1.0, 1.0);
  auto VthHi = M.vthForFrequency(1.0, 1.2);
  ASSERT_TRUE(VthLo && VthHi);
  EXPECT_GT(*VthHi, *VthLo);
}

TEST(AlphaPower, UnreachableFrequencyRejected) {
  AlphaPowerModel M = referenceModel();
  // 3 GHz at 0.7 V is far beyond the technology.
  EXPECT_FALSE(M.vthForFrequency(3.0, 0.7).has_value());
}

TEST(AlphaPower, ValidityMargin) {
  AlphaPowerModel M = referenceModel();
  // Vdd - 2*Vth > 0.1 * Vdd.
  EXPECT_TRUE(M.isValidOperatingPoint(1.0, 0.25));
  EXPECT_TRUE(M.isValidOperatingPoint(1.0, 0.44));
  EXPECT_FALSE(M.isValidOperatingPoint(1.0, 0.46));
  EXPECT_FALSE(M.isValidOperatingPoint(1.0, 0.0));
  EXPECT_FALSE(M.isValidOperatingPoint(1.0, 1.1));
}

TEST(AlphaPower, FmaxMonotoneInVddAtFixedVth) {
  AlphaPowerModel M = referenceModel();
  // With fixed Vth = 0.25, a larger overdrive dominates the 1/Vdd term.
  EXPECT_GT(M.fmaxGHz(1.2, 0.25), M.fmaxGHz(1.0, 0.25));
  EXPECT_GT(M.fmaxGHz(1.0, 0.25), M.fmaxGHz(0.8, 0.25));
}

TEST(Scaling, DynamicQuadratic) {
  EXPECT_DOUBLE_EQ(dynamicEnergyScale(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(dynamicEnergyScale(0.5, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(dynamicEnergyScale(1.2, 1.0), 1.44);
}

TEST(Scaling, StaticExponentialInVth) {
  // One subthreshold slope (0.1 V) below the reference Vth multiplies
  // leakage by 10.
  EXPECT_NEAR(staticEnergyScale(1.0, 0.15, 1.0, 0.25, 0.1), 10.0, 1e-9);
  EXPECT_NEAR(staticEnergyScale(1.0, 0.35, 1.0, 0.25, 0.1), 0.1, 1e-9);
  EXPECT_NEAR(staticEnergyScale(0.8, 0.25, 1.0, 0.25, 0.1), 0.8, 1e-12);
}

EnergyModel referenceEnergyModel(EnergyBreakdown B = EnergyBreakdown()) {
  ActivityCounts Ref;
  Ref.WeightedIns = 1000;
  Ref.Comms = 50;
  Ref.MemAccesses = 200;
  return EnergyModel(B, Ref, /*RefTexecNs=*/1e4, /*NumClusters=*/4);
}

TEST(EnergyModel, ReferenceNormalizesToOne) {
  EnergyModel M = referenceEnergyModel();
  ActivityCounts Ref;
  Ref.WeightedIns = 1000;
  Ref.Comms = 50;
  Ref.MemAccesses = 200;
  DomainScaling Unit;
  double E = M.homogeneousEnergy(Ref, 1e4, Unit, Unit, Unit);
  EXPECT_NEAR(E, 1.0, 1e-12);
}

TEST(EnergyModel, SharesMatchBreakdown) {
  EnergyBreakdown B;
  EnergyModel M = referenceEnergyModel(B);
  // Cluster dynamic share: (1 - cache - icn) * (1 - clusterLeak).
  double ClusterDyn = M.insUnit() * 1000;
  EXPECT_NEAR(ClusterDyn, B.clusterShare() * (1 - B.ClusterLeakageFrac),
              1e-12);
  double IcnDyn = M.commUnit() * 50;
  EXPECT_NEAR(IcnDyn, B.IcnShare * (1 - B.IcnLeakageFrac), 1e-12);
  double CacheDyn = M.accessUnit() * 200;
  EXPECT_NEAR(CacheDyn, B.CacheShare * (1 - B.CacheLeakageFrac), 1e-12);
  double Leak = (M.clusterLeakPerNs() * 4 + M.icnLeakPerNs() +
                 M.cacheLeakPerNs()) *
                1e4;
  EXPECT_NEAR(Leak + ClusterDyn + IcnDyn + CacheDyn, 1.0, 1e-12);
}

TEST(EnergyModel, LeakageScalesWithTime) {
  EnergyModel M = referenceEnergyModel();
  HeteroScaling S;
  S.Clusters.assign(4, DomainScaling());
  std::vector<double> WIns(4, 0.0);
  double E1 = M.heteroEnergy(WIns, 0, 0, 1e4, S);
  double E2 = M.heteroEnergy(WIns, 0, 0, 2e4, S);
  EXPECT_NEAR(E2, 2 * E1, 1e-12);
}

TEST(EnergyModel, PerClusterDeltaWeighting) {
  EnergyModel M = referenceEnergyModel();
  HeteroScaling S;
  S.Clusters.assign(4, DomainScaling());
  S.Clusters[0].Delta = 2.0; // one expensive cluster
  std::vector<double> AllInFast = {1000, 0, 0, 0};
  std::vector<double> AllInSlow = {0, 1000, 0, 0};
  double EFast = M.heteroEnergy(AllInFast, 0, 0, 0, S);
  double ESlow = M.heteroEnergy(AllInSlow, 0, 0, 0, S);
  EXPECT_NEAR(EFast, 2 * ESlow, 1e-12);
}

TEST(EnergyModel, ZeroCountsYieldZeroUnits) {
  ActivityCounts Ref;
  Ref.WeightedIns = 100;
  EnergyModel M(EnergyBreakdown(), Ref, 1e3, 4);
  EXPECT_DOUBLE_EQ(M.commUnit(), 0.0);
  EXPECT_DOUBLE_EQ(M.accessUnit(), 0.0);
}

TEST(ED2, Definition) {
  EXPECT_DOUBLE_EQ(computeED2(2.0, 3.0), 18.0);
  EXPECT_DOUBLE_EQ(computeED2(0.5, 10.0), 50.0);
}

} // namespace
