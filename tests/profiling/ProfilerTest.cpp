//===- tests/profiling/ProfilerTest.cpp - Reference profiling ---------------===//

#include "profiling/Profiler.h"
#include "workloads/SpecFPSuite.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace hcvliw;

namespace {

TEST(Profiler, FieldsArePopulated) {
  MachineDescription M = MachineDescription::paperDefault();
  Profiler Prof(M, 1e6);
  std::vector<Loop> Loops = {makeStreamLoop("s", 5, 32, 0.6),
                             makeChainRecurrenceLoop("r", 1, 2, 1, 3, 32,
                                                     0.4)};
  auto P = Prof.profileProgram("test", Loops);
  ASSERT_TRUE(P.has_value());
  ASSERT_EQ(P->Loops.size(), 2u);

  const LoopProfile &S = P->Loops[0];
  EXPECT_EQ(S.Name, "s");
  EXPECT_EQ(S.RecMII, 0);
  EXPECT_EQ(S.ResMII, 4); // 15 mem ops / 4 ports
  EXPECT_GT(S.IIHom, 0);
  EXPECT_GT(S.PerIter.WeightedIns, 0);
  EXPECT_DOUBLE_EQ(S.PerIter.MemAccesses, 15);
  EXPECT_GT(S.SumLifetimesRef, 0);
  EXPECT_FALSE(S.Components.empty());

  const LoopProfile &R = P->Loops[1];
  EXPECT_EQ(R.RecMII, 12);
  EXPECT_EQ(R.classification(), LoopConstraint::Recurrence);
  EXPECT_EQ(S.classification(), LoopConstraint::Resource);
}

TEST(Profiler, InvocationsRealizeWeights) {
  MachineDescription M = MachineDescription::paperDefault();
  Profiler Prof(M, 2e6);
  std::vector<Loop> Loops = {makeStreamLoop("a", 4, 32, 3.0),
                             makeStreamLoop("b", 4, 32, 1.0)};
  auto P = Prof.profileProgram("w", Loops);
  ASSERT_TRUE(P.has_value());
  // Weights normalize to 0.75 / 0.25 of the 2e6 ns budget.
  EXPECT_NEAR(P->Loops[0].totalRefNs(), 1.5e6, 1);
  EXPECT_NEAR(P->Loops[1].totalRefNs(), 0.5e6, 1);
  EXPECT_NEAR(P->TexecRefNs, 2e6, 1);
  auto Shares = P->shareByConstraint();
  EXPECT_NEAR(Shares[0], 1.0, 1e-9); // all resource-constrained
}

TEST(Profiler, ClassificationBoundaries) {
  LoopProfile LP;
  LP.ResMII = 10;
  LP.RecMII = 9;
  EXPECT_EQ(LP.classification(), LoopConstraint::Resource);
  LP.RecMII = 10;
  EXPECT_EQ(LP.classification(), LoopConstraint::Borderline);
  LP.RecMII = 12; // 1.2 * resMII < 1.3
  EXPECT_EQ(LP.classification(), LoopConstraint::Borderline);
  LP.RecMII = 13; // exactly 1.3 * resMII
  EXPECT_EQ(LP.classification(), LoopConstraint::Recurrence);
}

TEST(Profiler, ComponentsCoverAllOps) {
  MachineDescription M = MachineDescription::paperDefault();
  Profiler Prof(M);
  std::vector<Loop> Loops = {makeStreamLoop("s", 6, 32, 1.0)};
  auto P = Prof.profileProgram("c", Loops);
  ASSERT_TRUE(P.has_value());
  const LoopProfile &LP = P->Loops[0];
  // 6 independent lanes -> 6 components of 5 ops each.
  EXPECT_EQ(LP.Components.size(), 6u);
  unsigned Total = 0;
  for (const auto &CP : LP.Components) {
    for (unsigned K = 0; K < NumFUKinds; ++K)
      Total += CP.FUCounts[K];
    EXPECT_EQ(CP.RecMII, 0);
  }
  EXPECT_EQ(Total, LP.NumOps);
}

TEST(Profiler, CriticalComponentCarriesRecMII) {
  MachineDescription M = MachineDescription::paperDefault();
  Profiler Prof(M);
  std::vector<Loop> Loops = {
      makeChainRecurrenceLoop("r", 1, 2, 1, 2, 32, 1.0)};
  auto P = Prof.profileProgram("c", Loops);
  ASSERT_TRUE(P.has_value());
  int64_t MaxComp = 0;
  for (const auto &CP : P->Loops[0].Components)
    MaxComp = std::max(MaxComp, CP.RecMII);
  EXPECT_EQ(MaxComp, P->Loops[0].RecMII);
}

TEST(Profiler, WholeSuiteProfiles) {
  MachineDescription M = MachineDescription::paperDefault();
  Profiler Prof(M);
  for (const auto &Prog : buildSpecFPSuite()) {
    auto P = Prof.profileProgram(Prog.Name, Prog.Loops);
    ASSERT_TRUE(P.has_value()) << Prog.Name;
    auto Shares = P->shareByConstraint();
    EXPECT_NEAR(Shares[0] + Shares[1] + Shares[2], 1.0, 1e-9) << Prog.Name;
  }
}

} // namespace
