//===- tests/runtime/ArenaSuiteTest.cpp - Arenas are inert under threads ----===//
//
// The per-worker ScheduleScratch arenas (Session::scheduleScratchPool)
// must be invisible in results: a full SPECfp suite run — which routes
// every per-loop schedule through a thread-keyed arena — is
// bit-identical for Threads in {1, 2, 4}, and identical to the
// standalone (arena-per-call) pipeline. Also pins that the arenas were
// actually exercised (the pool saw at least one thread) and that the
// measurement layer's per-IT failure detail reaches SuiteFailure
// records.
//
//===----------------------------------------------------------------------===//

#include "runtime/SuiteRunner.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

/// The measured fields the arenas could plausibly corrupt: every
/// per-loop schedule-derived number, compared bitwise.
void expectSameMeasured(const SuiteResult &A, const SuiteResult &B) {
  ASSERT_EQ(A.Names, B.Names);
  ASSERT_EQ(A.Failures.size(), B.Failures.size());
  ASSERT_EQ(A.Details.size(), B.Details.size());
  for (size_t I = 0; I < A.Details.size(); ++I) {
    const ProgramRunResult &X = A.Details[I], &Y = B.Details[I];
    EXPECT_EQ(X.ED2Ratio, Y.ED2Ratio) << X.Name;
    EXPECT_EQ(X.HetMeasured.TexecNs, Y.HetMeasured.TexecNs) << X.Name;
    EXPECT_EQ(X.HetMeasured.Energy, Y.HetMeasured.Energy) << X.Name;
    EXPECT_EQ(X.HetMeasured.ED2, Y.HetMeasured.ED2) << X.Name;
    EXPECT_EQ(X.HomMeasured.TexecNs, Y.HomMeasured.TexecNs) << X.Name;
    EXPECT_EQ(X.HomMeasured.ED2, Y.HomMeasured.ED2) << X.Name;
    EXPECT_EQ(X.HetMeasured.SchedPlacements, Y.HetMeasured.SchedPlacements)
        << X.Name;
    EXPECT_EQ(X.HetMeasured.SchedEjections, Y.HetMeasured.SchedEjections)
        << X.Name;
    EXPECT_EQ(X.HetMeasured.SchedBudgetUsed, Y.HetMeasured.SchedBudgetUsed)
        << X.Name;
    EXPECT_EQ(X.HetMeasured.SchedITSteps, Y.HetMeasured.SchedITSteps)
        << X.Name;
    ASSERT_EQ(X.HetMeasured.Loops.size(), Y.HetMeasured.Loops.size());
    for (size_t L = 0; L < X.HetMeasured.Loops.size(); ++L) {
      EXPECT_EQ(X.HetMeasured.Loops[L].ITNs, Y.HetMeasured.Loops[L].ITNs);
      EXPECT_EQ(X.HetMeasured.Loops[L].TexecNs,
                Y.HetMeasured.Loops[L].TexecNs);
      EXPECT_EQ(X.HetMeasured.Loops[L].Comms, Y.HetMeasured.Loops[L].Comms);
    }
  }
}

TEST(ArenaSuite, SuiteBitIdenticalForThreadCountsWithArenas) {
  PipelineOptions Opts;
  SuiteResult Serial;
  {
    Session S(Opts, 1);
    Serial = SuiteRunner(S).runSpecFP();
    // The suite really scheduled through the session arenas.
    EXPECT_GE(S.scheduleScratchPool().threadsSeen(), 1u);
  }
  ASSERT_EQ(Serial.Names.size(), 10u);
  EXPECT_TRUE(Serial.Failures.empty());
  for (unsigned Threads : {2u, 4u}) {
    Session S(Opts, Threads);
    SuiteResult Par = SuiteRunner(S).runSpecFP();
    expectSameMeasured(Serial, Par);
    EXPECT_GE(S.scheduleScratchPool().threadsSeen(), 1u);
    EXPECT_LE(S.scheduleScratchPool().threadsSeen(),
              static_cast<size_t>(Threads));
  }
}

TEST(ArenaSuite, SessionArenasMatchStandalonePipeline) {
  // The standalone pipeline uses a fresh local arena per measurement;
  // the session pipeline reuses per-worker arenas across programs and
  // measurements. Same numbers either way.
  PipelineOptions Opts;
  HeterogeneousPipeline Standalone(Opts);
  Session S(Opts, 2);
  for (const char *Name : {"171.swim", "178.galgel", "200.sixtrack"}) {
    auto A = Standalone.runProgram(buildSpecFPProgram(Name));
    auto B = S.pipeline().runProgram(buildSpecFPProgram(Name));
    ASSERT_TRUE(A.has_value() && B.has_value()) << Name;
    EXPECT_EQ(A->ED2Ratio, B->ED2Ratio) << Name;
    EXPECT_EQ(A->HetMeasured.ED2, B->HetMeasured.ED2) << Name;
    EXPECT_EQ(A->HomMeasured.ED2, B->HomMeasured.ED2) << Name;
    EXPECT_EQ(A->HetMeasured.SchedPlacements, B->HetMeasured.SchedPlacements)
        << Name;
  }
}

TEST(ArenaSuite, MeasurementFailureCarriesPerITDetail) {
  // A loop the measurement stage cannot schedule within one IT step:
  // the SuiteFailure reason must name the loop and the per-IT stage
  // failures, not just a count.
  PipelineOptions Opts;
  Opts.MaxITSteps = 0;
  Opts.MenuSize = 2; // coarse menu: recurrences regularly miss step 0
  Session S(Opts, 2);
  SuiteResult R = SuiteRunner(S).runSpecFP();
  // Not every program fails under this regime; whichever does must
  // carry the aggregated detail.
  for (const SuiteFailure &F : R.Failures) {
    if (F.Stage != PipelineStage::Measurement)
      continue;
    EXPECT_NE(F.Reason.find("IT+"), std::string::npos) << F.Reason;
    EXPECT_NE(F.Reason.find("unschedulable"), std::string::npos) << F.Reason;
  }
}

} // namespace
