//===- tests/runtime/SessionSuiteTest.cpp - Session / SuiteRunner -----------===//
//
// The Session/SuiteRunner API contracts: full-suite results are
// bit-identical for any thread count and any nested-parallelism
// budget; failed programs surface as structured records instead of
// being dropped; the session-shared EvalCache hits across the het and
// hom selections and across programs sharing loop structure; progress
// callbacks stream once per program.
//
//===----------------------------------------------------------------------===//

#include "runtime/SuiteRunner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>

using namespace hcvliw;

namespace {

/// Field-for-field equality of two suite runs. EXPECT_EQ on doubles is
/// bitwise-exact equality — that is the contract.
void expectBitIdentical(const SuiteResult &A, const SuiteResult &B) {
  ASSERT_EQ(A.Names, B.Names);
  ASSERT_EQ(A.ED2Ratios.size(), B.ED2Ratios.size());
  for (size_t I = 0; I < A.ED2Ratios.size(); ++I)
    EXPECT_EQ(A.ED2Ratios[I], B.ED2Ratios[I]) << A.Names[I];
  ASSERT_EQ(A.Failures.size(), B.Failures.size());
  for (size_t I = 0; I < A.Failures.size(); ++I) {
    EXPECT_EQ(A.Failures[I].Program, B.Failures[I].Program);
    EXPECT_EQ(A.Failures[I].Stage, B.Failures[I].Stage);
    EXPECT_EQ(A.Failures[I].Reason, B.Failures[I].Reason);
  }
  ASSERT_EQ(A.Details.size(), B.Details.size());
  for (size_t I = 0; I < A.Details.size(); ++I) {
    const ProgramRunResult &X = A.Details[I], &Y = B.Details[I];
    EXPECT_EQ(X.Name, Y.Name);
    EXPECT_EQ(X.ED2Ratio, Y.ED2Ratio) << X.Name;
    EXPECT_EQ(X.HetDesign.EstTexecNs, Y.HetDesign.EstTexecNs) << X.Name;
    EXPECT_EQ(X.HetDesign.EstEnergy, Y.HetDesign.EstEnergy) << X.Name;
    EXPECT_EQ(X.HetDesign.EstED2, Y.HetDesign.EstED2) << X.Name;
    EXPECT_EQ(X.HomDesign.EstED2, Y.HomDesign.EstED2) << X.Name;
    ASSERT_EQ(X.HetDesign.Config.Clusters.size(),
              Y.HetDesign.Config.Clusters.size());
    for (size_t C = 0; C < X.HetDesign.Config.Clusters.size(); ++C) {
      EXPECT_EQ(X.HetDesign.Config.Clusters[C].PeriodNs,
                Y.HetDesign.Config.Clusters[C].PeriodNs);
      EXPECT_EQ(X.HetDesign.Config.Clusters[C].Vdd,
                Y.HetDesign.Config.Clusters[C].Vdd);
      EXPECT_EQ(X.HetDesign.Config.Clusters[C].Vth,
                Y.HetDesign.Config.Clusters[C].Vth);
    }
    EXPECT_EQ(X.HetMeasured.TexecNs, Y.HetMeasured.TexecNs) << X.Name;
    EXPECT_EQ(X.HetMeasured.Energy, Y.HetMeasured.Energy) << X.Name;
    EXPECT_EQ(X.HetMeasured.ED2, Y.HetMeasured.ED2) << X.Name;
    EXPECT_EQ(X.HetMeasured.Failures, Y.HetMeasured.Failures) << X.Name;
    EXPECT_EQ(X.HomMeasured.TexecNs, Y.HomMeasured.TexecNs) << X.Name;
    EXPECT_EQ(X.HomMeasured.Energy, Y.HomMeasured.Energy) << X.Name;
    EXPECT_EQ(X.HomMeasured.ED2, Y.HomMeasured.ED2) << X.Name;
    ASSERT_EQ(X.HetMeasured.Loops.size(), Y.HetMeasured.Loops.size());
    for (size_t L = 0; L < X.HetMeasured.Loops.size(); ++L) {
      EXPECT_EQ(X.HetMeasured.Loops[L].Name, Y.HetMeasured.Loops[L].Name);
      EXPECT_EQ(X.HetMeasured.Loops[L].ITNs, Y.HetMeasured.Loops[L].ITNs);
      EXPECT_EQ(X.HetMeasured.Loops[L].TexecNs,
                Y.HetMeasured.Loops[L].TexecNs);
      EXPECT_EQ(X.HetMeasured.Loops[L].Comms, Y.HetMeasured.Loops[L].Comms);
    }
  }
}

// --- Determinism -----------------------------------------------------------

TEST(SuiteRunner, FullSuiteBitIdenticalAcrossThreadCounts) {
  PipelineOptions Opts;
  SuiteResult Serial;
  {
    Session S(Opts, 1);
    Serial = SuiteRunner(S).runSpecFP();
  }
  ASSERT_EQ(Serial.Names.size(), 10u);
  EXPECT_TRUE(Serial.Failures.empty());
  for (unsigned Threads : {2u, 4u}) {
    Session S(Opts, Threads);
    SuiteResult Par = SuiteRunner(S).runSpecFP();
    expectBitIdentical(Serial, Par);
  }
}

TEST(SuiteRunner, NestedParallelismBudgetDoesNotChangeResults) {
  PipelineOptions Opts;
  Session S1(Opts, 4);
  SuiteResult Free = SuiteRunner(S1).runSpecFP();
  for (size_t Lanes : {1u, 2u, 3u}) {
    Session S2(Opts, 4);
    SuiteOptions SO;
    SO.ProgramLanes = Lanes;
    SuiteResult Budgeted = SuiteRunner(S2).runSpecFP(SO);
    expectBitIdentical(Free, Budgeted);
  }
}

// --- Structured failures ---------------------------------------------------

TEST(SuiteRunner, BrokenProgramIsReportedNotSkipped) {
  // A deliberately broken program: zero total loop weight makes the
  // profiler refuse it. It must appear in Failures with stage and
  // reason, and the healthy program must still run.
  std::vector<BenchmarkProgram> Programs;
  Programs.push_back(buildSpecFPProgram("171.swim"));
  BenchmarkProgram Broken = buildSpecFPProgram("187.facerec");
  Broken.Name = "999.broken";
  for (Loop &L : Broken.Loops)
    L.Weight = 0.0;
  Programs.push_back(std::move(Broken));

  Session S{PipelineOptions(), 2};
  SuiteResult R = SuiteRunner(S).run(Programs);
  ASSERT_EQ(R.Names.size(), 1u);
  EXPECT_EQ(R.Names[0], "171.swim");
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Program, "999.broken");
  EXPECT_EQ(R.Failures[0].Stage, PipelineStage::Profiling);
  EXPECT_FALSE(R.Failures[0].Reason.empty());
  EXPECT_EQ(R.numPrograms(), 2u);
}

TEST(SuiteRunner, SelectionStageFailureIsAttributed) {
  // An empty cluster-voltage grid makes every heterogeneous candidate
  // infeasible: the failure must be attributed to the selection stage.
  PipelineOptions Opts;
  Opts.Space.ClusterVddGrid.clear();
  Session S(Opts, 1);
  SuiteResult R =
      SuiteRunner(S).run({buildSpecFPProgram("171.swim")});
  EXPECT_TRUE(R.Names.empty());
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Stage, PipelineStage::Selection);
  EXPECT_NE(R.Failures[0].Reason.find("heterogeneous"), std::string::npos);
}

// --- Shared cache ----------------------------------------------------------

TEST(Session, EvalCacheHitsAcrossProgramsSharingLoopStructure) {
  // 187.facerec's stream and first recurrence loop are structurally
  // identical to loops of 168.wupwise (same generator parameters), so
  // after wupwise runs, facerec's selection must only miss on the
  // shapes of its one structurally new loop (4 distinct slow/fast
  // ratios in the paper grid).
  Session S{PipelineOptions(), 1};
  PipelineError Err;
  auto R1 = S.pipeline().runProgram(buildSpecFPProgram("168.wupwise"), &Err);
  ASSERT_TRUE(R1.has_value()) << Err.Reason;
  uint64_t Misses1 = S.evalCache().misses();
  uint64_t Hits1 = S.evalCache().hits();
  ASSERT_GT(Misses1, 0u);

  auto R2 = S.pipeline().runProgram(buildSpecFPProgram("187.facerec"), &Err);
  ASSERT_TRUE(R2.has_value()) << Err.Reason;
  uint64_t NewMisses = S.evalCache().misses() - Misses1;
  EXPECT_EQ(NewMisses, 4u) << "only face_rec2's 4 frequency shapes are new";
  EXPECT_GT(S.evalCache().hits(), Hits1);
}

TEST(Session, CrossProgramHitsOnTheFullSuite) {
  // Acceptance gate: running the ten-program SPECfp suite through one
  // session must produce strictly fewer timing-cache misses than the
  // sum of isolated per-program runs — the difference is exactly the
  // cross-program sharing.
  uint64_t IsolatedMisses = 0;
  for (const auto &Prog : buildSpecFPSuite()) {
    Session S{PipelineOptions(), 1};
    PipelineError Err;
    ASSERT_TRUE(S.pipeline().runProgram(Prog, &Err).has_value())
        << Prog.Name << ": " << Err.Reason;
    IsolatedMisses += S.evalCache().misses();
  }

  Session Shared{PipelineOptions(), 1};
  SuiteResult R = SuiteRunner(Shared).runSpecFP();
  ASSERT_EQ(R.Names.size(), 10u);
  EXPECT_LT(Shared.evalCache().misses(), IsolatedMisses);
  EXPECT_GT(Shared.evalCache().hits(), 0u);
}

TEST(Session, SelectionMemoHitsAcrossTheTwoSelectionsOnRepeat) {
  // runProgram wires both the heterogeneous and the homogeneous
  // selection through the session cache's selection memo: re-running a
  // program must hit both (and reproduce the results bit-identically).
  Session S{PipelineOptions(), 1};
  auto R1 = S.pipeline().runProgram(buildSpecFPProgram("200.sixtrack"));
  ASSERT_TRUE(R1.has_value());
  EXPECT_EQ(S.pipeline().options().Buses, 1u);
  EXPECT_EQ(S.evalCache().selectionHits(), 0u);
  EXPECT_EQ(S.evalCache().selectionMisses(), 2u); // het + hom stored

  uint64_t TimingMisses = S.evalCache().misses();
  auto R2 = S.pipeline().runProgram(buildSpecFPProgram("200.sixtrack"));
  ASSERT_TRUE(R2.has_value());
  EXPECT_EQ(S.evalCache().selectionHits(), 2u); // het + hom reused
  EXPECT_EQ(S.evalCache().misses(), TimingMisses); // no re-evaluation
  EXPECT_EQ(R1->HetDesign.EstED2, R2->HetDesign.EstED2);
  EXPECT_EQ(R1->HomDesign.EstED2, R2->HomDesign.EstED2);
  EXPECT_EQ(R1->ED2Ratio, R2->ED2Ratio);
}

TEST(Session, SessionBackedPipelineMatchesStandalone) {
  // The session path (shared cache, pool, memos) must be numerically
  // identical to the seed's standalone pipeline.
  PipelineOptions Opts;
  HeterogeneousPipeline Standalone(Opts);
  Session S(Opts, 4);
  for (const char *Name : {"171.swim", "200.sixtrack", "191.fma3d"}) {
    auto A = Standalone.runProgram(buildSpecFPProgram(Name));
    auto B = S.pipeline().runProgram(buildSpecFPProgram(Name));
    ASSERT_TRUE(A.has_value() && B.has_value()) << Name;
    EXPECT_EQ(A->ED2Ratio, B->ED2Ratio) << Name;
    EXPECT_EQ(A->HetDesign.EstED2, B->HetDesign.EstED2) << Name;
    EXPECT_EQ(A->HomDesign.EstED2, B->HomDesign.EstED2) << Name;
    EXPECT_EQ(A->HetMeasured.ED2, B->HetMeasured.ED2) << Name;
    EXPECT_EQ(A->HomMeasured.ED2, B->HomMeasured.ED2) << Name;
  }
}

// --- Progress streaming ----------------------------------------------------

TEST(SuiteRunner, ProgressCallbackStreamsOncePerProgram) {
  Session S{PipelineOptions(), 4};
  std::mutex M;
  std::set<std::string> Seen;
  std::set<size_t> CompletedValues;
  size_t Calls = 0;
  SuiteOptions SO;
  SO.OnProgramDone = [&](const SuiteProgress &P) {
    std::lock_guard<std::mutex> Lock(M);
    ++Calls;
    EXPECT_EQ(P.Total, 10u);
    EXPECT_TRUE(P.Ok);
    EXPECT_GT(P.ED2Ratio, 0.0);
    Seen.insert(P.Program);
    CompletedValues.insert(P.Completed);
  };
  SuiteResult R = SuiteRunner(S).runSpecFP(SO);
  EXPECT_EQ(Calls, 10u);
  EXPECT_EQ(Seen.size(), 10u);  // every program exactly once
  EXPECT_EQ(CompletedValues.size(), 10u); // 1..10, each seen once
  EXPECT_EQ(*CompletedValues.begin(), 1u);
  EXPECT_EQ(*CompletedValues.rbegin(), 10u);
}

TEST(SuiteRunner, FailureSurfacesInProgressCallback) {
  BenchmarkProgram Broken;
  Broken.Name = "000.empty";
  Session S{PipelineOptions(), 1};
  SuiteOptions SO;
  bool SawFailure = false;
  SO.OnProgramDone = [&](const SuiteProgress &P) {
    EXPECT_FALSE(P.Ok);
    ASSERT_NE(P.Failure, nullptr);
    EXPECT_EQ(P.Failure->Stage, PipelineStage::Profiling);
    SawFailure = true;
  };
  SuiteResult R = SuiteRunner(S).run({Broken}, SO);
  EXPECT_TRUE(SawFailure);
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Reason, "program has no loops");
}

} // namespace
