//===- tests/runtime/WorkerPoolTest.cpp - Worker-pool substrate -------------===//
//
// The pool's determinism contract under contention: every slot runs
// exactly once, slot-indexed writes reproduce the serial result for
// any thread count, RNG streams are a function of the slot (never the
// thread), and nested parallelFor makes progress with every worker
// busy.
//
//===----------------------------------------------------------------------===//

#include "runtime/WorkerPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

using namespace hcvliw;

namespace {

TEST(WorkerPool, ThreadCountResolution) {
  WorkerPool Inline(1);
  EXPECT_EQ(Inline.threads(), 1u);
  WorkerPool Four(4);
  EXPECT_EQ(Four.threads(), 4u);
  WorkerPool Hw(0);
  EXPECT_GE(Hw.threads(), 1u);
}

TEST(WorkerPool, DeterministicSlotIndexedResultsUnderContention) {
  const size_t N = 5000;
  // Serial reference.
  std::vector<uint64_t> Ref(N);
  for (size_t I = 0; I < N; ++I)
    Ref[I] = I * I + 17 * I + 3;

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    WorkerPool Pool(Threads);
    std::vector<uint64_t> Out(N, 0);
    std::vector<std::atomic<int>> Runs(N);
    for (auto &R : Runs)
      R.store(0);
    // Many tiny slots maximize claim contention.
    Pool.parallelFor(N, [&](size_t I) {
      Out[I] = I * I + 17 * I + 3;
      Runs[I].fetch_add(1);
    });
    EXPECT_EQ(Out, Ref) << "threads=" << Threads;
    for (size_t I = 0; I < N; ++I)
      ASSERT_EQ(Runs[I].load(), 1) << "slot " << I << " ran "
                                   << Runs[I].load() << " times";
  }
}

TEST(WorkerPool, RngStreamsDependOnSlotNotSchedule) {
  const size_t N = 257;
  RNG Root(0x5eed);
  // Serial reference: stream I is Root.fork(I).
  std::vector<uint64_t> Ref(N);
  for (size_t I = 0; I < N; ++I) {
    RNG S = Root.fork(I);
    Ref[I] = S.next();
  }
  for (unsigned Threads : {1u, 4u}) {
    WorkerPool Pool(Threads);
    std::vector<uint64_t> Out(N, 0);
    Pool.parallelFor(N, Root, [&](size_t I, RNG &S) { Out[I] = S.next(); });
    EXPECT_EQ(Out, Ref) << "threads=" << Threads;
  }
}

TEST(WorkerPool, NestedParallelForCompletes) {
  // Outer fan-out wider than the pool, each item nesting another job:
  // every worker is busy with an outer item when the nested jobs are
  // submitted, so this deadlocks unless submitters work on their own
  // jobs.
  const size_t Outer = 12, Inner = 64;
  WorkerPool Pool(4);
  std::vector<uint64_t> Sums(Outer, 0);
  Pool.parallelFor(Outer, [&](size_t O) {
    std::vector<uint64_t> Part(Inner, 0);
    Pool.parallelFor(Inner, [&](size_t I) { Part[I] = O * 1000 + I; });
    Sums[O] = std::accumulate(Part.begin(), Part.end(), uint64_t{0});
  });
  for (size_t O = 0; O < Outer; ++O)
    EXPECT_EQ(Sums[O], O * 1000 * Inner + Inner * (Inner - 1) / 2);
}

TEST(WorkerPool, TwoLevelNestingWithStridedLanes) {
  // The SuiteRunner shape: few lanes, each processing a strided range,
  // nesting inner jobs on the same pool.
  WorkerPool Pool(3);
  const size_t N = 10, Lanes = 2, Inner = 32;
  std::vector<uint64_t> Out(N, 0);
  Pool.parallelFor(Lanes, [&](size_t Lane) {
    for (size_t I = Lane; I < N; I += Lanes) {
      std::atomic<uint64_t> Sum{0};
      Pool.parallelFor(Inner, [&](size_t J) {
        Sum.fetch_add(I * J, std::memory_order_relaxed);
      });
      Out[I] = Sum.load();
    }
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Out[I], I * (Inner * (Inner - 1) / 2));
}

TEST(WorkerPool, ReusableAcrossManyJobs) {
  WorkerPool Pool(4);
  std::atomic<uint64_t> Total{0};
  for (int Job = 0; Job < 50; ++Job)
    Pool.parallelFor(20, [&](size_t I) {
      Total.fetch_add(I + 1, std::memory_order_relaxed);
    });
  EXPECT_EQ(Total.load(), 50u * (20u * 21u / 2));
}

TEST(WorkerPool, EdgeCases) {
  WorkerPool Pool(4);
  bool Ran = false;
  Pool.parallelFor(0, [&](size_t) { Ran = true; }); // empty: no calls
  EXPECT_FALSE(Ran);
  Pool.parallelFor(1, [&](size_t I) { Ran = I == 0; }); // single slot
  EXPECT_TRUE(Ran);
}

} // namespace
