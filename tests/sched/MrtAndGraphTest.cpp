//===- tests/sched/MrtAndGraphTest.cpp - MRT and partitioned graph ----------===//

#include "ir/LoopDSL.h"
#include "mcd/DomainPlanner.h"
#include "sched/ModuloReservationTable.h"
#include "sched/PartitionedGraph.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

MachinePlan homogeneousPlan(const MachineDescription &M, int64_t II) {
  HeteroConfig C = HeteroConfig::reference(M);
  DomainPlanner P(M, C, FrequencyMenu::continuous());
  auto Plan = P.planForIT(Rational(II));
  EXPECT_TRUE(Plan.has_value());
  return *Plan;
}

TEST(MRT, ReserveWrapsModulo) {
  MachineDescription M = MachineDescription::paperDefault();
  ModuloReservationTable T(M, homogeneousPlan(M, 3));
  EXPECT_EQ(T.tryReserve(0, FUKind::IntFU, 0, 10), 0);
  // Slot 3 maps to the same cell (mod 3): cluster 0 has one INT FU.
  EXPECT_EQ(T.tryReserve(0, FUKind::IntFU, 3, 11), -1);
  // Other slots and clusters are free.
  EXPECT_EQ(T.tryReserve(0, FUKind::IntFU, 1, 12), 0);
  EXPECT_EQ(T.tryReserve(1, FUKind::IntFU, 0, 13), 0);
  // Release frees the cell again.
  T.release(0, FUKind::IntFU, 3, 0, 10);
  EXPECT_EQ(T.tryReserve(0, FUKind::IntFU, 6, 14), 0);
}

TEST(MRT, MultipleUnits) {
  MachineDescription M = MachineDescription::paperDefault(2);
  ModuloReservationTable T(M, homogeneousPlan(M, 4));
  unsigned Bus = M.numClusters();
  EXPECT_EQ(T.tryReserve(Bus, FUKind::Bus, 2, 20), 0);
  EXPECT_EQ(T.tryReserve(Bus, FUKind::Bus, 2, 21), 1);
  EXPECT_EQ(T.tryReserve(Bus, FUKind::Bus, 6, 22), -1);
  auto Occ = T.occupants(Bus, FUKind::Bus, 6);
  ASSERT_EQ(Occ.size(), 2u);
  EXPECT_EQ(T.occupant(Bus, FUKind::Bus, 2, 0), 20);
}

TEST(MRT, NegativeSlotsWrapCorrectly) {
  MachineDescription M = MachineDescription::paperDefault();
  ModuloReservationTable T(M, homogeneousPlan(M, 5));
  EXPECT_EQ(T.tryReserve(2, FUKind::MemPort, -3, 30), 0);
  // -3 mod 5 == 2.
  EXPECT_EQ(T.tryReserve(2, FUKind::MemPort, 2, 31), -1);
}

Loop crossLoop() {
  return parseSingleLoop(R"(
loop cross trip=8
  arrays A O
  x = load A
  y = fadd x #1
  z = fmul x #2
  s = fadd y z
  store O s
endloop
)");
}

TEST(PartitionedGraph, NoCopiesWhenSingleCluster) {
  Loop L = crossLoop();
  DDG G = DDG::build(L);
  IsaTable Isa;
  Partition P = Partition::allInCluster(G.size(), 0);
  PartitionedGraph PG = PartitionedGraph::build(L, G, Isa, P, 4, 1);
  EXPECT_EQ(PG.numCopies(), 0u);
  EXPECT_EQ(PG.size(), G.size());
}

TEST(PartitionedGraph, OneCopyPerValueClusterPair) {
  Loop L = crossLoop();
  DDG G = DDG::build(L);
  IsaTable Isa;
  // x in cluster 0; its consumers y and z both in cluster 1: ONE copy.
  Partition P;
  P.ClusterOf = {0, 1, 1, 1, 1};
  PartitionedGraph PG = PartitionedGraph::build(L, G, Isa, P, 4, 1);
  EXPECT_EQ(PG.numCopies(), 1u);
  const PGNode &Copy = PG.node(G.size());
  EXPECT_EQ(Copy.Domain, PG.busDomain());
  EXPECT_EQ(Copy.Op, Opcode::Copy);
  EXPECT_EQ(Copy.CopiedValue, 0);
  // Producer -> copy edge carries the producer's latency.
  bool FoundIn = false;
  for (unsigned EIx : PG.inEdges(G.size())) {
    const PGEdge &E = PG.edge(EIx);
    EXPECT_EQ(E.Src, 0u);
    EXPECT_EQ(E.LatencyCycles, Isa.latency(Opcode::Load));
    FoundIn = true;
  }
  EXPECT_TRUE(FoundIn);
  // Copy -> consumers with bus latency.
  EXPECT_EQ(PG.outEdges(G.size()).size(), 2u);
}

TEST(PartitionedGraph, TwoDestinationsTwoCopies) {
  Loop L = crossLoop();
  DDG G = DDG::build(L);
  IsaTable Isa;
  // x in 0, y in 1, z in 2: two copies of x, plus z's value crossing
  // from cluster 2 into s's cluster 1.
  Partition P;
  P.ClusterOf = {0, 1, 2, 1, 1};
  PartitionedGraph PG = PartitionedGraph::build(L, G, Isa, P, 4, 1);
  EXPECT_EQ(PG.numCopies(), 3u);
  unsigned CopiesOfX = 0;
  for (unsigned N = G.size(); N < PG.size(); ++N)
    if (PG.node(N).CopiedValue == 0)
      ++CopiesOfX;
  EXPECT_EQ(CopiesOfX, 2u);
}

TEST(PartitionedGraph, CarriedDistanceStaysOnConsumerEdge) {
  Loop L = parseSingleLoop(R"(
loop carried trip=8
  arrays O
  a = fadd b@2 #1 init=0
  b = fadd a #1
  store O b
endloop
)");
  DDG G = DDG::build(L);
  IsaTable Isa;
  Partition P;
  P.ClusterOf = {0, 1, 1};
  PartitionedGraph PG = PartitionedGraph::build(L, G, Isa, P, 4, 1);
  // Two crossings: a's value 0 -> 1 and b's value 1 -> 0. The copy of
  // b must read b at distance 0 and feed a at the carried distance 2.
  ASSERT_EQ(PG.numCopies(), 2u);
  int CopyOfB = -1;
  for (unsigned N = G.size(); N < PG.size(); ++N)
    if (PG.node(N).CopiedValue == 1)
      CopyOfB = static_cast<int>(N);
  ASSERT_GE(CopyOfB, 0);
  unsigned CopyIx = static_cast<unsigned>(CopyOfB);
  for (unsigned EIx : PG.inEdges(CopyIx))
    EXPECT_EQ(PG.edge(EIx).Distance, 0u);
  bool Found = false;
  for (unsigned EIx : PG.outEdges(CopyIx)) {
    const PGEdge &E = PG.edge(EIx);
    if (E.Dst == 0) {
      EXPECT_EQ(E.Distance, 2u);
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST(PartitionedGraph, MemoryOrderingEdgesNeverCopy) {
  Loop L = parseSingleLoop(R"(
loop mem trip=8
  arrays A
  x = load A
  y = fadd x #1
  store A y off=1
endloop
)");
  DDG G = DDG::build(L);
  IsaTable Isa;
  Partition P;
  P.ClusterOf = {0, 0, 3}; // store far away from the load
  PartitionedGraph PG = PartitionedGraph::build(L, G, Isa, P, 4, 1);
  // Only the register value x->y... y->store crosses: y's value needs a
  // copy; the store->load MemFlow edge does not.
  EXPECT_EQ(PG.numCopies(), 1u);
  for (unsigned EIx = 0; EIx < PG.edges().size(); ++EIx) {
    const PGEdge &E = PG.edge(EIx);
    if (E.Src == 2 && E.Dst == 0) {
      EXPECT_FALSE(E.CarriesValue);
    }
  }
}

} // namespace
