//===- tests/sched/PressureAndPseudoTest.cpp - MaxLive + pseudo-schedules ---===//

#include "ir/LoopDSL.h"
#include "mcd/DomainPlanner.h"
#include "sched/PseudoScheduler.h"
#include "sched/RegisterPressure.h"
#include "partition/LoopScheduler.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

MachinePlan planAt(const MachineDescription &M, const HeteroConfig &C,
                   const Rational &IT) {
  DomainPlanner P(M, C, FrequencyMenu::continuous());
  auto Plan = P.planForIT(IT);
  EXPECT_TRUE(Plan.has_value());
  return *Plan;
}

TEST(RegisterPressure, LongLifetimeCountsMultipleRegisters) {
  // A value produced every II cycles but alive for ~2*II must occupy
  // two registers at some modulo slot.
  Loop L = parseSingleLoop(R"(
loop lt trip=16
  arrays A O
  x = load A
  y = fdiv x #3
  z = fadd y x
  store O z
endloop
)");
  MachineDescription M = MachineDescription::paperDefault(1, 1);
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success) << R.Failure;
  RegisterPressureResult P = computeRegisterPressure(R.PG, R.Sched);
  // x lives from its load until z reads it, across the fdiv's 18
  // cycles, while II is ~2-3: several overlapping copies of x.
  int64_t II = R.Sched.Plan.Clusters[0].II;
  EXPECT_GE(P.MaxLive[0], 18 / II);
  EXPECT_GT(P.SumLifetimes[0], 18);
}

TEST(RegisterPressure, FitsChecksPerCluster) {
  RegisterPressureResult R;
  R.MaxLive = {16, 3, 2, 1};
  R.SumLifetimes = {0, 0, 0, 0};
  MachineDescription M = MachineDescription::paperDefault();
  EXPECT_TRUE(R.fits(M));
  R.MaxLive[0] = 17;
  EXPECT_FALSE(R.fits(M));
}

TEST(PseudoScheduler, DetectsClusterOverCapacity) {
  Loop L = makeStreamLoop("s", 6, 16, 1.0); // 18 mem ops
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);
  HeteroConfig C = HeteroConfig::reference(M);
  MachinePlan Plan = planAt(M, C, Rational(5));
  // Everything in one cluster: 18 memory ops >> 5 slots.
  Partition P = Partition::allInCluster(G.size(), 0);
  PseudoSchedule PS = estimatePseudoSchedule(L, G, M, Plan, P);
  EXPECT_FALSE(PS.Feasible);
  EXPECT_EQ(PS.Reason, "cluster capacity exceeded");
}

TEST(PseudoScheduler, DetectsBusOverCapacity) {
  Loop L = makeStreamLoop("s", 4, 16, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);
  HeteroConfig C = HeteroConfig::reference(M);
  MachinePlan Plan = planAt(M, C, Rational(3));
  // Round-robin by op: every lane is cut several times -> many copies.
  Partition P;
  P.ClusterOf.resize(G.size());
  for (unsigned I = 0; I < G.size(); ++I)
    P.ClusterOf[I] = I % 4;
  PseudoSchedule PS = estimatePseudoSchedule(L, G, M, Plan, P);
  EXPECT_FALSE(PS.Feasible);
  EXPECT_EQ(PS.Reason, "bus capacity exceeded");
}

TEST(PseudoScheduler, DetectsInfeasibleRecurrence) {
  Loop L = makeWideRecurrenceLoop("r", 2, 1, 1, 16, 1.0); // recMII 6
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);
  HeteroConfig C = HeteroConfig::reference(M);
  MachinePlan Plan = planAt(M, C, Rational(4));
  Partition P = Partition::allInCluster(G.size(), 0);
  PseudoSchedule PS = estimatePseudoSchedule(L, G, M, Plan, P);
  EXPECT_FALSE(PS.Feasible);
  EXPECT_EQ(PS.Reason, "recurrence infeasible");
}

TEST(PseudoScheduler, FeasibleReportsActivity) {
  Loop L = makeStreamLoop("s", 4, 16, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);
  HeteroConfig C = HeteroConfig::reference(M);
  MachinePlan Plan = planAt(M, C, Rational(4));
  // One lane per cluster: no communications at all.
  Partition P;
  P.ClusterOf.resize(G.size());
  for (unsigned I = 0; I < G.size(); ++I)
    P.ClusterOf[I] = I / 5; // 5 ops per lane
  PseudoSchedule PS = estimatePseudoSchedule(L, G, M, Plan, P);
  ASSERT_TRUE(PS.Feasible) << PS.Reason;
  EXPECT_EQ(PS.Comms, 0u);
  double TotalW = 0;
  for (double W : PS.WInsPerCluster)
    TotalW += W;
  double Expected = 0;
  for (const auto &O : L.Ops)
    Expected += M.Isa.energy(O.Op);
  EXPECT_NEAR(TotalW, Expected, 1e-9);
  EXPECT_GT(PS.ItLengthNs, Rational(0));
}

TEST(PseudoScheduler, ItLengthGrowsWithSlowerClusters) {
  Loop L = makeStreamLoop("s", 4, 16, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);

  Partition P;
  P.ClusterOf.resize(G.size());
  for (unsigned I = 0; I < G.size(); ++I)
    P.ClusterOf[I] = I / 5;

  HeteroConfig Ref = HeteroConfig::reference(M);
  MachinePlan PlanRef = planAt(M, Ref, Rational(4));
  PseudoSchedule Fast = estimatePseudoSchedule(L, G, M, PlanRef, P);

  HeteroConfig Slow = Ref;
  for (auto &Cl : Slow.Clusters)
    Cl.PeriodNs = Rational(3, 2);
  Slow.Icn.PeriodNs = Rational(3, 2);
  Slow.Cache.PeriodNs = Rational(3, 2);
  MachinePlan PlanSlow = planAt(M, Slow, Rational(6));
  PseudoSchedule Slower = estimatePseudoSchedule(L, G, M, PlanSlow, P);

  ASSERT_TRUE(Fast.Feasible && Slower.Feasible);
  EXPECT_GT(Slower.ItLengthNs, Fast.ItLengthNs);
}

} // namespace
