//===- tests/sched/SchedulerTest.cpp - Modulo scheduler properties ----------===//
//
// Property tests of the heterogeneous modulo scheduler: over random
// loops and machine configurations, every produced schedule must pass
// the independent validator (dependences under the exact cross-domain
// timing rule, modulo resource exclusivity, II*period == IT, register
// pressure) and execute functionally equivalently to sequential code.
//
//===----------------------------------------------------------------------===//

#include "partition/LoopScheduler.h"
#include "sched/HeteroModuloScheduler.h"
#include "vliwsim/PipelinedSimulator.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

HeteroConfig configFor(const MachineDescription &M, unsigned Kind) {
  HeteroConfig C = HeteroConfig::reference(M);
  switch (Kind % 4) {
  case 0: // reference homogeneous
    break;
  case 1: // one fast 0.9, three slow 1.35
    C.Clusters[0].PeriodNs = Rational(9, 10);
    for (unsigned I = 1; I < C.numClusters(); ++I)
      C.Clusters[I].PeriodNs = Rational(27, 20);
    C.Icn.PeriodNs = Rational(9, 10);
    C.Cache.PeriodNs = Rational(9, 10);
    break;
  case 2: // one fast 1.0, three slow 1.25
    for (unsigned I = 1; I < C.numClusters(); ++I)
      C.Clusters[I].PeriodNs = Rational(5, 4);
    break;
  case 3: // fast 1.05, slow 1.4 (= 1.05 * 4/3)
    C.Clusters[0].PeriodNs = Rational(21, 20);
    for (unsigned I = 1; I < C.numClusters(); ++I)
      C.Clusters[I].PeriodNs = Rational(7, 5);
    C.Icn.PeriodNs = Rational(21, 20);
    C.Cache.PeriodNs = Rational(21, 20);
    break;
  }
  return C;
}

class SchedulerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulerPropertyTest, RandomLoopsScheduleValidAndExact) {
  auto [Seed, ConfigKind] = GetParam();
  RNG Rng(static_cast<uint64_t>(Seed) * 7919 + 13);
  RandomLoopParams Params;
  Params.MinOps = 6;
  Params.MaxOps = 28;
  Params.Trip = 24;
  Loop L = makeRandomLoop(Rng, Params, "prop");
  ASSERT_EQ(L.validate(), "");

  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = configFor(M, static_cast<unsigned>(ConfigKind));
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success) << "seed " << Seed << ": " << R.Failure;

  EXPECT_EQ(validateSchedule(M, R.PG, R.Sched), "");
  EXPECT_TRUE(R.Pressure.fits(M));
  EXPECT_EQ(checkFunctionalEquivalence(L, R.PG, R.Sched, M, L.TripCount),
            "");

  // IT >= MIT by construction, and II * period == IT for each domain.
  EXPECT_GE(R.Sched.Plan.ITNs, R.MITNs);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulerPropertyTest,
                         ::testing::Combine(::testing::Range(0, 25),
                                            ::testing::Range(0, 4)));

TEST(Scheduler, AsapDetectsInfeasibleRecurrence) {
  // Accumulator with latency 3 at distance 1 cannot meet IT = 2 ns.
  Loop L = makeWideRecurrenceLoop("tight", 1, 1, 0, 8, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);
  Partition P = Partition::allInCluster(G.size(), 0);
  PartitionedGraph PG = PartitionedGraph::build(L, G, M.Isa, P, 4, 1);
  HeteroConfig C = HeteroConfig::reference(M);
  DomainPlanner Planner(M, C, FrequencyMenu::continuous());
  auto Plan = Planner.planForIT(Rational(2));
  ASSERT_TRUE(Plan.has_value());
  EXPECT_FALSE(computeAsapTimes(PG, *Plan).has_value());
  // And at IT = 3 ns it becomes feasible.
  auto Plan3 = Planner.planForIT(Rational(3));
  EXPECT_TRUE(computeAsapTimes(PG, *Plan3).has_value());
}

TEST(Scheduler, AchievesMITOnSimpleStream) {
  Loop L = makeStreamLoop("s", 4, 32, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success) << R.Failure;
  // 12 memory ops over 4 ports: MII = 3; the schedule should reach it
  // within one IT step.
  EXPECT_LE(R.Sched.Plan.ITNs, Rational(4));
}

TEST(Scheduler, HeterogeneousIIsDifferPerDomain) {
  Loop L = makeChainRecurrenceLoop("r", 1, 2, 1, 3, 32, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = configFor(M, 1);
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success) << R.Failure;
  EXPECT_GT(R.Sched.Plan.Clusters[0].II, R.Sched.Plan.Clusters[1].II);
  for (unsigned D = 0; D < 4; ++D)
    EXPECT_EQ(Rational(R.Sched.Plan.Clusters[D].II) *
                  R.Sched.Plan.Clusters[D].PeriodNs,
              R.Sched.Plan.ITNs);
}

TEST(Scheduler, CriticalRecurrenceLandsInFastCluster) {
  // recMII 12 (1 fmul + 2 fadd at distance 1); fast cluster 0.9 ns,
  // slow 1.35 ns: at IT = 10.8 only the fast cluster has II >= 12.
  Loop L = makeChainRecurrenceLoop("r", 1, 2, 1, 4, 32, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = configFor(M, 1);
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success) << R.Failure;

  DDG G = DDG::build(L);
  RecurrenceInfo Recs = analyzeRecurrences(G, M.Isa.nodeLatencies(L));
  ASSERT_FALSE(Recs.Recurrences.empty());
  int64_t SlowII = R.Sched.Plan.Clusters[1].II;
  if (Recs.Recurrences[0].RecMII > SlowII) {
    for (unsigned N : Recs.Recurrences[0].Nodes)
      EXPECT_EQ(R.Assignment.cluster(N), 0u)
          << "critical recurrence node outside the fast cluster";
  }
}

TEST(Scheduler, ValidatorCatchesCorruption) {
  Loop L = makeStreamLoop("v", 3, 16, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success);
  ASSERT_EQ(validateSchedule(M, R.PG, R.Sched), "");

  // Move a dependent op one slot earlier: some invariant must break.
  Schedule Bad = R.Sched;
  for (unsigned N = 0; N < R.PG.size(); ++N) {
    if (R.PG.inEdges(N).empty())
      continue;
    Bad.Nodes[N].Slot -= 1;
    break;
  }
  EXPECT_NE(validateSchedule(M, R.PG, Bad), "");
}

TEST(Scheduler, RegisterPressureFailsOnTinyFiles) {
  // A machine with 2-register files cannot hold a wide stream loop.
  MachineDescription M = MachineDescription::paperDefault();
  for (auto &Cl : M.Clusters)
    Cl.Registers = 2;
  Loop L = makeStreamLoop("wide", 8, 16, 1.0);
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduleOptions O;
  O.MaxITSteps = 6; // keep the failure fast
  LoopScheduler Sched(M, C, O);
  LoopScheduleResult R = Sched.schedule(L);
  // Either it fails, or it found a (much longer) fitting schedule.
  if (R.Success) {
    EXPECT_TRUE(R.Pressure.fits(M));
    EXPECT_GT(R.Sched.Plan.ITNs, Rational(6));
  }
}

} // namespace
