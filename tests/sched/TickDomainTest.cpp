//===- tests/sched/TickDomainTest.cpp - Tick path == Rational path ----------===//
//
// The tick-domain scheduling fast path must be *bit-identical* to the
// retained exact-Rational reference: over random loops and several
// heterogeneous machine plans, the full Figure 5 driver run with
// UseTickGrid on and off must produce the same success state, the same
// machine plan, the same slot/unit for every node, the same register
// pressure, and the same effort counters. Also pins the tick ASAP
// fixpoint against the Rational one and the scheduler's graceful
// fallback when a plan has no valid grid.
//
//===----------------------------------------------------------------------===//

#include "partition/LoopScheduler.h"
#include "sched/TickGraph.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

HeteroConfig configFor(const MachineDescription &M, unsigned Kind) {
  HeteroConfig C = HeteroConfig::reference(M);
  switch (Kind % 4) {
  case 0: // reference homogeneous
    break;
  case 1: // one fast 0.9, three slow 1.35
    C.Clusters[0].PeriodNs = Rational(9, 10);
    for (unsigned I = 1; I < C.numClusters(); ++I)
      C.Clusters[I].PeriodNs = Rational(27, 20);
    C.Icn.PeriodNs = Rational(9, 10);
    C.Cache.PeriodNs = Rational(9, 10);
    break;
  case 2: // one fast 1.0, three slow 1.25
    for (unsigned I = 1; I < C.numClusters(); ++I)
      C.Clusters[I].PeriodNs = Rational(5, 4);
    break;
  case 3: // fast 1.05, slow 1.4 (= 1.05 * 4/3)
    C.Clusters[0].PeriodNs = Rational(21, 20);
    for (unsigned I = 1; I < C.numClusters(); ++I)
      C.Clusters[I].PeriodNs = Rational(7, 5);
    C.Icn.PeriodNs = Rational(21, 20);
    C.Cache.PeriodNs = Rational(21, 20);
    break;
  }
  return C;
}

class TickDomainPropertyTest : public ::testing::TestWithParam<int> {};

// ~50 random loops x 4 plans, scheduled through the whole Figure 5
// driver on both arithmetic paths: slot/unit-identical output.
TEST_P(TickDomainPropertyTest, FullDriverBitIdentical) {
  int Seed = GetParam();
  RNG Rng(static_cast<uint64_t>(Seed) * 104729 + 7);
  RandomLoopParams Params;
  Params.MinOps = 6;
  Params.MaxOps = 40;
  Params.Trip = 24;
  Loop L = makeRandomLoop(Rng, Params, "tickprop");
  ASSERT_EQ(L.validate(), "");

  MachineDescription M = MachineDescription::paperDefault();
  for (unsigned Kind = 0; Kind < 4; ++Kind) {
    HeteroConfig C = configFor(M, Kind);

    LoopScheduleOptions TickOpts;
    TickOpts.Sched.UseTickGrid = true;
    LoopScheduleOptions RatOpts;
    RatOpts.Sched.UseTickGrid = false;

    LoopScheduleResult TR = LoopScheduler(M, C, TickOpts).schedule(L);
    LoopScheduleResult RR = LoopScheduler(M, C, RatOpts).schedule(L);

    ASSERT_EQ(TR.Success, RR.Success)
        << "seed " << Seed << " kind " << Kind << ": " << TR.Failure
        << " vs " << RR.Failure;
    EXPECT_EQ(TR.Failure, RR.Failure);
    EXPECT_EQ(TR.ITSteps, RR.ITSteps) << "seed " << Seed << " kind " << Kind;
    EXPECT_EQ(TR.Placements, RR.Placements);
    EXPECT_EQ(TR.Ejections, RR.Ejections);
    EXPECT_EQ(TR.BudgetUsed, RR.BudgetUsed);
    if (!TR.Success)
      continue;

    EXPECT_EQ(TR.Sched.Plan.ITNs, RR.Sched.Plan.ITNs);
    ASSERT_EQ(TR.Sched.Nodes.size(), RR.Sched.Nodes.size());
    for (unsigned N = 0; N < TR.Sched.Nodes.size(); ++N) {
      EXPECT_EQ(TR.Sched.Nodes[N].Slot, RR.Sched.Nodes[N].Slot)
          << "seed " << Seed << " kind " << Kind << " node " << N;
      EXPECT_EQ(TR.Sched.Nodes[N].Unit, RR.Sched.Nodes[N].Unit)
          << "seed " << Seed << " kind " << Kind << " node " << N;
    }
    EXPECT_EQ(TR.Pressure.MaxLive, RR.Pressure.MaxLive);
    EXPECT_EQ(TR.Pressure.SumLifetimes, RR.Pressure.SumLifetimes);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TickDomainPropertyTest,
                         ::testing::Range(0, 50));

// The tick ASAP fixpoint is the Rational one scaled by ticksPerNs.
TEST(TickDomain, AsapMatchesRationalScaled) {
  RNG Rng(0xa5a5);
  RandomLoopParams Params;
  Params.MinOps = 12;
  Params.MaxOps = 24;
  Loop L = makeRandomLoop(Rng, Params, "asap");
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);
  Partition P = Partition::allInCluster(G.size(), 0);
  PartitionedGraph PG = PartitionedGraph::build(L, G, M.Isa, P, 4, 1);

  HeteroConfig C = configFor(M, 1);
  DomainPlanner Planner(M, C, FrequencyMenu::continuous());
  auto Plan = Planner.planForIT(Rational(27, 2));
  ASSERT_TRUE(Plan.has_value());

  auto T = TickGraph::build(PG, *Plan);
  ASSERT_TRUE(T.has_value());
  auto TickAsap = T->computeAsapTicks();
  auto RatAsap = computeAsapTimes(PG, *Plan);
  ASSERT_EQ(TickAsap.has_value(), RatAsap.has_value());
  ASSERT_TRUE(TickAsap.has_value());
  for (unsigned N = 0; N < PG.size(); ++N)
    EXPECT_EQ(T->grid().toNs((*TickAsap)[N]), (*RatAsap)[N]) << "node " << N;
}

// Infeasible recurrences are detected identically on both paths.
TEST(TickDomain, AsapInfeasibilityAgrees) {
  Loop L = makeWideRecurrenceLoop("tight", 1, 1, 0, 8, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);
  Partition P = Partition::allInCluster(G.size(), 0);
  PartitionedGraph PG = PartitionedGraph::build(L, G, M.Isa, P, 4, 1);
  HeteroConfig C = HeteroConfig::reference(M);
  DomainPlanner Planner(M, C, FrequencyMenu::continuous());
  for (int64_t IT = 2; IT <= 4; ++IT) {
    auto Plan = Planner.planForIT(Rational(IT));
    ASSERT_TRUE(Plan.has_value());
    auto T = TickGraph::build(PG, *Plan);
    ASSERT_TRUE(T.has_value());
    EXPECT_EQ(T->computeAsapTicks().has_value(),
              computeAsapTimes(PG, *Plan).has_value())
        << "IT " << IT;
  }
}

// A plan whose denominator LCM overflows has no grid; the scheduler
// must fall back to the Rational path and still schedule.
TEST(TickDomain, OverflowPlanFallsBackGracefully) {
  RNG Rng(0x77);
  RandomLoopParams Params;
  Params.MinOps = 8;
  Params.MaxOps = 12;
  Loop L = makeRandomLoop(Rng, Params, "fallback");
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);
  Partition P = Partition::allInCluster(G.size(), 0);
  PartitionedGraph PG = PartitionedGraph::build(L, G, M.Isa, P, 4, 1);

  HeteroConfig C = HeteroConfig::reference(M);
  DomainPlanner Planner(M, C, FrequencyMenu::continuous());
  auto Plan = Planner.planForIT(Rational(8));
  ASSERT_TRUE(Plan.has_value());
  // Perturb two cluster periods onto coprime ~4e9 denominators: their
  // LCM alone exceeds int64. (The plan is no longer II*period == IT
  // consistent, which the placement loop itself never checks -- only
  // grid validity and path equivalence matter here.)
  Plan->Clusters[1].PeriodNs = Rational(4000000009LL, 4000000007LL);
  Plan->Clusters[2].PeriodNs = Rational(4000000007LL, 4000000009LL);
  ASSERT_FALSE(TickGraph::build(PG, *Plan).has_value());

  SchedulerOptions TickOn;
  SchedulerOptions TickOff;
  TickOff.UseTickGrid = false;
  SchedulerResult A = HeteroModuloScheduler(M, PG, *Plan, TickOn).run();
  SchedulerResult B = HeteroModuloScheduler(M, PG, *Plan, TickOff).run();
  EXPECT_EQ(A.Success, B.Success);
  ASSERT_EQ(A.Sched.Nodes.size(), B.Sched.Nodes.size());
  for (unsigned N = 0; N < A.Sched.Nodes.size(); ++N) {
    EXPECT_EQ(A.Sched.Nodes[N].Slot, B.Sched.Nodes[N].Slot);
    EXPECT_EQ(A.Sched.Nodes[N].Unit, B.Sched.Nodes[N].Unit);
  }
}

} // namespace
