//===- tests/sched/WarmStartTest.cpp - Warm path == cold path ---------------===//
//
// The warm-started IT sweep must be *bit-identical* to the retained
// WarmStart=false cold path: over random loops, several heterogeneous
// machine plans and both frequency-menu shapes, the full Figure 5
// driver run warm (shared per-worker arena, coarsening/PG memos,
// duplicate-attempt replay, recurrence lower-bound prune) and cold
// (every structure recomputed from scratch at every IT step) must
// produce the same success state, machine plan, slot/unit for every
// node, register pressure, effort counters, and per-IT failure log —
// the same equivalence contract TickDomainTest pins for tick-vs-
// Rational. Also pins that the arena itself is inert (same results
// with a shared scratch, a fresh scratch, and no scratch) and that the
// lower-bound prune actually fires on menu-restricted sweeps.
//
//===----------------------------------------------------------------------===//

#include "configsel/Scaling.h"
#include "partition/LoopScheduler.h"
#include "partition/ScheduleScratch.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

HeteroConfig configFor(const MachineDescription &M, unsigned Kind) {
  HeteroConfig C = HeteroConfig::reference(M);
  switch (Kind % 4) {
  case 0: // reference homogeneous
    break;
  case 1: // one fast 0.9, three slow 1.35
    C.Clusters[0].PeriodNs = Rational(9, 10);
    for (unsigned I = 1; I < C.numClusters(); ++I)
      C.Clusters[I].PeriodNs = Rational(27, 20);
    C.Icn.PeriodNs = Rational(9, 10);
    C.Cache.PeriodNs = Rational(9, 10);
    break;
  case 2: // one fast 1.0, three slow 1.25
    for (unsigned I = 1; I < C.numClusters(); ++I)
      C.Clusters[I].PeriodNs = Rational(5, 4);
    break;
  case 3: // fast 1.05, slow 1.4 (= 1.05 * 4/3)
    C.Clusters[0].PeriodNs = Rational(21, 20);
    for (unsigned I = 1; I < C.numClusters(); ++I)
      C.Clusters[I].PeriodNs = Rational(7, 5);
    C.Icn.PeriodNs = Rational(21, 20);
    C.Cache.PeriodNs = Rational(21, 20);
    break;
  }
  return C;
}

/// Full-result equality, including the per-IT failure log. The one
/// field excluded is PrunedITSteps: it reports work *saved* and is 0 by
/// definition on the cold path.
void expectSameResult(const LoopScheduleResult &W, const LoopScheduleResult &C,
                      const std::string &Tag) {
  ASSERT_EQ(W.Success, C.Success) << Tag << ": " << W.Failure << " vs "
                                  << C.Failure;
  EXPECT_EQ(W.Failure, C.Failure) << Tag;
  EXPECT_EQ(W.MITNs, C.MITNs) << Tag;
  EXPECT_EQ(W.ITSteps, C.ITSteps) << Tag;
  EXPECT_EQ(W.Placements, C.Placements) << Tag;
  EXPECT_EQ(W.Ejections, C.Ejections) << Tag;
  EXPECT_EQ(W.BudgetUsed, C.BudgetUsed) << Tag;
  EXPECT_EQ(W.RecMII, C.RecMII) << Tag;
  EXPECT_EQ(W.ResMII, C.ResMII) << Tag;

  ASSERT_EQ(W.FailureLog.size(), C.FailureLog.size()) << Tag;
  for (size_t I = 0; I < W.FailureLog.size(); ++I) {
    EXPECT_EQ(W.FailureLog[I].Step, C.FailureLog[I].Step) << Tag << " #" << I;
    EXPECT_EQ(W.FailureLog[I].ITNs, C.FailureLog[I].ITNs) << Tag << " #" << I;
    EXPECT_EQ(W.FailureLog[I].Reason, C.FailureLog[I].Reason)
        << Tag << " #" << I;
    EXPECT_EQ(W.FailureLog[I].Count, C.FailureLog[I].Count)
        << Tag << " #" << I;
  }
  if (!W.Success)
    return;

  EXPECT_EQ(W.Sched.Plan.ITNs, C.Sched.Plan.ITNs) << Tag;
  ASSERT_EQ(W.Sched.Nodes.size(), C.Sched.Nodes.size()) << Tag;
  for (unsigned N = 0; N < W.Sched.Nodes.size(); ++N) {
    EXPECT_EQ(W.Sched.Nodes[N].Slot, C.Sched.Nodes[N].Slot)
        << Tag << " node " << N;
    EXPECT_EQ(W.Sched.Nodes[N].Unit, C.Sched.Nodes[N].Unit)
        << Tag << " node " << N;
  }
  EXPECT_EQ(W.Assignment.ClusterOf, C.Assignment.ClusterOf) << Tag;
  EXPECT_EQ(W.Pressure.MaxLive, C.Pressure.MaxLive) << Tag;
  EXPECT_EQ(W.Pressure.SumLifetimes, C.Pressure.SumLifetimes) << Tag;
}

class WarmStartPropertyTest : public ::testing::TestWithParam<int> {};

// ~50 random loops x 4 plans x 2 menus, scheduled through the whole
// Figure 5 driver warm and cold. The warm run shares ONE arena across
// every (plan, menu) iteration — exactly the reuse pattern of a suite
// measurement — so stale-memo bugs across runs would surface here.
TEST_P(WarmStartPropertyTest, FullDriverBitIdentical) {
  int Seed = GetParam();
  RNG Rng(static_cast<uint64_t>(Seed) * 52361 + 11);
  RandomLoopParams Params;
  Params.MinOps = 6;
  Params.MaxOps = 40;
  Params.Trip = 24;
  Loop L = makeRandomLoop(Rng, Params, "warmprop");
  ASSERT_EQ(L.validate(), "");

  MachineDescription M = MachineDescription::paperDefault();
  ScheduleScratch Shared;
  for (unsigned Kind = 0; Kind < 4; ++Kind) {
    HeteroConfig C = configFor(M, Kind);
    for (unsigned MenuKind = 0; MenuKind < 2; ++MenuKind) {
      LoopScheduleOptions WarmOpts;
      WarmOpts.Menu = MenuKind ? FrequencyMenu::relativeLadder(4)
                               : FrequencyMenu::continuous();
      WarmOpts.WarmStart = true;
      LoopScheduleOptions ColdOpts = WarmOpts;
      ColdOpts.WarmStart = false;

      std::string Tag = "seed " + std::to_string(Seed) + " kind " +
                        std::to_string(Kind) + " menu " +
                        std::to_string(MenuKind);
      LoopScheduleResult W =
          LoopScheduler(M, C, WarmOpts).schedule(L, nullptr, nullptr, &Shared);
      LoopScheduleResult Cold = LoopScheduler(M, C, ColdOpts).schedule(L);
      expectSameResult(W, Cold, Tag);

      // The arena is inert: warm without any caller scratch agrees too.
      LoopScheduleResult WNoScratch = LoopScheduler(M, C, WarmOpts).schedule(L);
      expectSameResult(WNoScratch, Cold, Tag + " (no scratch)");
      EXPECT_EQ(Cold.PrunedITSteps, 0u) << Tag;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WarmStartPropertyTest,
                         ::testing::Range(0, 50));

// The ED2-objective flow runs two partition attempts per IT step (the
// duplicate-assignment replay path only exists there) — pin warm==cold
// through it, energy model and scaling attached.
TEST(WarmStart, ED2ObjectiveBitIdentical) {
  MachineDescription M = MachineDescription::paperDefault();
  ActivityCounts Ref;
  Ref.WeightedIns = 1000;
  Ref.Comms = 20;
  Ref.MemAccesses = 300;
  EnergyModel Energy(EnergyBreakdown(), Ref, 1e5, 4);
  TechnologyModel Tech = TechnologyModel::paperDefault();

  ScheduleScratch Shared;
  for (int Seed = 0; Seed < 12; ++Seed) {
    RNG Rng(static_cast<uint64_t>(Seed) * 7907 + 3);
    RandomLoopParams Params;
    Params.MinOps = 8;
    Params.MaxOps = 32;
    Params.Trip = 24;
    Loop L = makeRandomLoop(Rng, Params, "warmed2");
    for (unsigned Kind = 1; Kind < 4; ++Kind) {
      HeteroConfig C = configFor(M, Kind);
      HeteroScaling Scaling = scalingForConfig(C, M, Tech);

      LoopScheduleOptions WarmOpts;
      WarmOpts.Menu = FrequencyMenu::relativeLadder(4);
      WarmOpts.WarmStart = true;
      LoopScheduleOptions ColdOpts = WarmOpts;
      ColdOpts.WarmStart = false;

      std::string Tag = "ed2 seed " + std::to_string(Seed) + " kind " +
                        std::to_string(Kind);
      LoopScheduleResult W = LoopScheduler(M, C, WarmOpts)
                                 .schedule(L, &Energy, &Scaling, &Shared);
      LoopScheduleResult Cold =
          LoopScheduler(M, C, ColdOpts).schedule(L, &Energy, &Scaling);
      expectSameResult(W, Cold, Tag);
    }
  }
}

// The recurrence lower-bound prune must actually fire somewhere in a
// menu-restricted sweep (otherwise the warm path is untested dead
// code) — deterministic fixture scan, equivalence pinned above.
TEST(WarmStart, LowerBoundPruneFires) {
  MachineDescription M = MachineDescription::paperDefault();
  unsigned TotalPruned = 0;
  ScheduleScratch Shared;
  for (int Seed = 0; Seed < 50 && TotalPruned == 0; ++Seed) {
    RNG Rng(static_cast<uint64_t>(Seed) * 52361 + 11);
    RandomLoopParams Params;
    Params.MinOps = 6;
    Params.MaxOps = 40;
    Params.Trip = 24;
    Loop L = makeRandomLoop(Rng, Params, "warmprop");
    for (unsigned Kind = 0; Kind < 4 && TotalPruned == 0; ++Kind) {
      LoopScheduleOptions O;
      O.Menu = FrequencyMenu::relativeLadder(4);
      LoopScheduleResult R = LoopScheduler(M, configFor(M, Kind), O)
                                 .schedule(L, nullptr, nullptr, &Shared);
      TotalPruned += R.PrunedITSteps;
    }
  }
  EXPECT_GT(TotalPruned, 0u)
      << "no IT step was ever pruned: the lower bound is dead code in "
         "this sweep; pick a fixture where it fires";
}

// Big loops take paths the random sweep above never reaches: the
// multilevel hierarchy records several coarse levels, refinement runs
// the boundary-FM pass (node counts far above MaxRefineMacros), and
// the warm IT sweep hits the per-level coarsening memo and the FM
// cut-row stamp cache. Pin warm==cold through all of it, on the same
// unrolled-kernel fixtures and register-scaled machines the big-loop
// e2e tests and the size-series bench use.
TEST(WarmStart, BigLoopFMPathBitIdentical) {
  for (unsigned Ops : {320u, 512u}) {
    Loop L = makeUnrolledKernelLoop("warmbig", Ops);
    ASSERT_EQ(L.validate(), "");
    MachineDescription M = MachineDescription::paperDefault();
    for (auto &Cl : M.Clusters)
      Cl.Registers = bigLoopRegisters(Ops);

    // One shared arena across both plans, like a suite measurement:
    // the second plan's warm run sees the first plan's memos.
    ScheduleScratch Shared;
    for (unsigned Kind = 0; Kind < 2; ++Kind) {
      HeteroConfig C = configFor(M, Kind);
      LoopScheduleOptions WarmOpts;
      WarmOpts.WarmStart = true;
      LoopScheduleOptions ColdOpts = WarmOpts;
      ColdOpts.WarmStart = false;

      std::string Tag =
          "ops " + std::to_string(Ops) + " kind " + std::to_string(Kind);
      LoopScheduleResult W =
          LoopScheduler(M, C, WarmOpts).schedule(L, nullptr, nullptr, &Shared);
      LoopScheduleResult Cold = LoopScheduler(M, C, ColdOpts).schedule(L);
      ASSERT_TRUE(Cold.Success) << Tag << ": " << Cold.Failure;
      expectSameResult(W, Cold, Tag);
    }
  }
}

// failureSummary says which stage failed at which IT.
TEST(WarmStart, FailureSummaryNamesStageAndIT) {
  // A recMII=9 recurrence on a one-frequency absolute menu whose only
  // plan at the MIT has II=3 everywhere: the pinned recurrence fits no
  // cluster and the single permitted IT step fails in partitioning.
  Loop L = makeWideRecurrenceLoop("tight", 3, 1, 0, 8, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  LoopScheduleOptions O;
  O.Menu = FrequencyMenu::uniform(1, Rational(1, 3));
  O.MaxITSteps = 0;
  LoopScheduleResult R =
      LoopScheduler(M, HeteroConfig::reference(M), O).schedule(L);
  ASSERT_FALSE(R.Success) << R.Failure;
  ASSERT_FALSE(R.FailureLog.empty());
  std::string Summary = R.failureSummary();
  EXPECT_NE(Summary.find("IT+0"), std::string::npos) << Summary;
  EXPECT_NE(Summary.find(R.Failure), std::string::npos) << Summary;
}

} // namespace
