//===- tests/support/GraphTest.cpp - Graph algorithm tests ------------------===//

#include "support/Graph.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace hcvliw;

namespace {

TEST(SCC, SingleNodes) {
  SCCResult R = computeSCCs(3, {{}, {}, {}});
  EXPECT_EQ(R.NumComponents, 3u);
}

TEST(SCC, SimpleCycle) {
  // 0 -> 1 -> 2 -> 0 plus tail 2 -> 3.
  SCCResult R = computeSCCs(4, {{1}, {2}, {0, 3}, {}});
  EXPECT_EQ(R.NumComponents, 2u);
  EXPECT_EQ(R.ComponentOf[0], R.ComponentOf[1]);
  EXPECT_EQ(R.ComponentOf[1], R.ComponentOf[2]);
  EXPECT_NE(R.ComponentOf[3], R.ComponentOf[0]);
}

TEST(SCC, TwoCyclesBridged) {
  // {0,1} and {2,3} cycles, bridge 1 -> 2.
  SCCResult R = computeSCCs(4, {{1}, {0, 2}, {3}, {2}});
  EXPECT_EQ(R.NumComponents, 2u);
  EXPECT_EQ(R.ComponentOf[0], R.ComponentOf[1]);
  EXPECT_EQ(R.ComponentOf[2], R.ComponentOf[3]);
}

TEST(SCC, MembersPartitionNodes) {
  RNG Rng(99);
  unsigned N = 40;
  std::vector<std::vector<unsigned>> Adj(N);
  for (unsigned I = 0; I < 80; ++I)
    Adj[static_cast<size_t>(Rng.nextInt(0, N - 1))].push_back(
        static_cast<unsigned>(Rng.nextInt(0, N - 1)));
  SCCResult R = computeSCCs(N, Adj);
  auto M = R.members();
  size_t Total = 0;
  for (const auto &Comp : M)
    Total += Comp.size();
  EXPECT_EQ(Total, N);
}

TEST(Topo, SimpleDAG) {
  auto Order = topologicalOrder(4, {{1, 2}, {3}, {3}, {}});
  ASSERT_TRUE(Order.has_value());
  std::vector<unsigned> Pos(4);
  for (unsigned I = 0; I < 4; ++I)
    Pos[(*Order)[I]] = I;
  EXPECT_LT(Pos[0], Pos[1]);
  EXPECT_LT(Pos[1], Pos[3]);
  EXPECT_LT(Pos[2], Pos[3]);
}

TEST(Topo, DetectsCycle) {
  EXPECT_FALSE(topologicalOrder(2, {{1}, {0}}).has_value());
  EXPECT_FALSE(topologicalOrder(1, {{0}}).has_value());
}

TEST(PositiveCycle, Basics) {
  using E = WeightedEdge<int64_t>;
  // 0 -> 1 -> 0 with total weight +1.
  std::vector<E> Cycle = {{0, 1, 3}, {1, 0, -2}};
  EXPECT_TRUE(hasPositiveCycle<int64_t>(2, Cycle));
  // Total weight 0: not positive.
  std::vector<E> Zero = {{0, 1, 2}, {1, 0, -2}};
  EXPECT_FALSE(hasPositiveCycle<int64_t>(2, Zero));
  // Acyclic.
  std::vector<E> Acyclic = {{0, 1, 100}};
  EXPECT_FALSE(hasPositiveCycle<int64_t>(2, Acyclic));
  EXPECT_FALSE(hasPositiveCycle<int64_t>(0, {}));
}

TEST(PositiveCycle, SelfLoop) {
  using E = WeightedEdge<int64_t>;
  EXPECT_TRUE(hasPositiveCycle<int64_t>(1, std::vector<E>{{0, 0, 1}}));
  EXPECT_FALSE(hasPositiveCycle<int64_t>(1, std::vector<E>{{0, 0, 0}}));
  EXPECT_FALSE(hasPositiveCycle<int64_t>(1, std::vector<E>{{0, 0, -1}}));
}

TEST(DagHeights, Chain) {
  using E = WeightedEdge<int64_t>;
  std::vector<E> Edges = {{0, 1, 4}, {1, 2, 5}};
  auto Order = topologicalOrder(3, {{1}, {2}, {}});
  ASSERT_TRUE(Order.has_value());
  auto H = dagHeights<int64_t>(3, Edges, *Order);
  EXPECT_EQ(H[0], 9);
  EXPECT_EQ(H[1], 5);
  EXPECT_EQ(H[2], 0);
}

TEST(DagHeights, Diamond) {
  using E = WeightedEdge<int64_t>;
  std::vector<E> Edges = {{0, 1, 1}, {0, 2, 10}, {1, 3, 1}, {2, 3, 1}};
  auto Order = topologicalOrder(4, {{1, 2}, {3}, {3}, {}});
  ASSERT_TRUE(Order.has_value());
  auto H = dagHeights<int64_t>(4, Edges, *Order);
  EXPECT_EQ(H[0], 11);
}

} // namespace
