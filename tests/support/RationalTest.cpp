//===- tests/support/RationalTest.cpp - Exact rational arithmetic ----------===//

#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

TEST(Rational, DefaultIsZero) {
  Rational R;
  EXPECT_TRUE(R.isZero());
  EXPECT_TRUE(R.isInteger());
  EXPECT_EQ(R.num(), 0);
  EXPECT_EQ(R.den(), 1);
}

TEST(Rational, NormalizesSigns) {
  Rational R(3, -6);
  EXPECT_EQ(R.num(), -1);
  EXPECT_EQ(R.den(), 2);
  EXPECT_TRUE(R.isNegative());
  EXPECT_EQ(Rational(-3, -6), Rational(1, 2));
}

TEST(Rational, NormalizesGcd) {
  Rational R(12, 30);
  EXPECT_EQ(R.num(), 2);
  EXPECT_EQ(R.den(), 5);
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, Arithmetic) {
  Rational A(1, 3), B(1, 6);
  EXPECT_EQ(A + B, Rational(1, 2));
  EXPECT_EQ(A - B, Rational(1, 6));
  EXPECT_EQ(A * B, Rational(1, 18));
  EXPECT_EQ(A / B, Rational(2));
  EXPECT_EQ(-A, Rational(-1, 3));
}

TEST(Rational, CompoundAssignment) {
  Rational R(1, 4);
  R += Rational(1, 4);
  EXPECT_EQ(R, Rational(1, 2));
  R *= Rational(4);
  EXPECT_EQ(R, Rational(2));
  R -= Rational(1, 2);
  EXPECT_EQ(R, Rational(3, 2));
  R /= Rational(3);
  EXPECT_EQ(R, Rational(1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_LE(Rational(1, 2), Rational(2, 4));
  EXPECT_GE(Rational(-1, 2), Rational(-2, 3));
  EXPECT_LT(Rational(-1), Rational(0));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6).floor(), 6);
  EXPECT_EQ(Rational(6).ceil(), 6);
  EXPECT_EQ(Rational(0).floor(), 0);
}

TEST(Rational, Reciprocal) {
  EXPECT_EQ(Rational(3, 4).reciprocal(), Rational(4, 3));
  EXPECT_EQ(Rational(-2, 5).reciprocal(), Rational(-5, 2));
}

TEST(Rational, Abs) {
  EXPECT_EQ(Rational(-3, 4).abs(), Rational(3, 4));
  EXPECT_EQ(Rational(3, 4).abs(), Rational(3, 4));
}

TEST(Rational, MinMax) {
  EXPECT_EQ(Rational::min(Rational(1, 3), Rational(1, 4)), Rational(1, 4));
  EXPECT_EQ(Rational::max(Rational(1, 3), Rational(1, 4)), Rational(1, 3));
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(5).str(), "5");
  EXPECT_EQ(Rational(5, 4).str(), "5/4");
  EXPECT_EQ(Rational(-5, 4).str(), "-5/4");
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).toDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-3, 4).toDouble(), -0.75);
}

TEST(Rational, LargeIntermediatesReduce) {
  // Denominator products transiently exceed 64 bits but reduce back.
  Rational A(1, 3000000000LL);
  Rational B(1, 4500000000LL);
  Rational Sum = A + B;
  EXPECT_EQ(Sum, Rational(5, 9000000000LL));
}

// The equal-denominator fast paths of +, -, * and < must agree with
// the general 128-bit route, including at the int64 boundaries where
// the fast path must fall through instead of wrapping.
TEST(Rational, FastPathIntegerArithmetic) {
  EXPECT_EQ(Rational(7) + Rational(35), Rational(42));
  EXPECT_EQ(Rational(-7) - Rational(35), Rational(-42));
  EXPECT_EQ(Rational(6) * Rational(-7), Rational(-42));
  EXPECT_LT(Rational(41), Rational(42));
  EXPECT_EQ(Rational(INT64_MAX - 1) + Rational(1), Rational(INT64_MAX));
  EXPECT_EQ(Rational(INT64_MIN + 1) - Rational(1), Rational(INT64_MIN));
}

TEST(Rational, FastPathEqualDenominators) {
  // Sum needs renormalization: 1/4 + 1/4 = 1/2.
  EXPECT_EQ(Rational(1, 4) + Rational(1, 4), Rational(1, 2));
  EXPECT_EQ(Rational(3, 10) - Rational(1, 10), Rational(1, 5));
  EXPECT_EQ(Rational(5, 7) + Rational(9, 7), Rational(2));
  EXPECT_LT(Rational(5, 7), Rational(6, 7));
  EXPECT_FALSE(Rational(6, 7) < Rational(5, 7));
}

TEST(Rational, FastPathOverflowFallsThrough) {
  // Numerator addition overflows int64: must take the wide route and
  // still reduce exactly (here to a representable value).
  Rational A(INT64_MAX - 1, 2), B(INT64_MAX - 1, 2);
  EXPECT_EQ(A + B, Rational(INT64_MAX - 1));
  EXPECT_EQ(A - B, Rational(0));
  // Integer product overflows int64 but reduces back under division.
  Rational C(INT64_MAX - 1, 1), D(2, INT64_MAX - 1);
  EXPECT_EQ(C * D, Rational(2));
}

TEST(Rational, GcdLcm) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(0, 6), 0);
}

// Property sweep: a/b + c/d recomputed with exact integers.
class RationalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RationalPropertyTest, FieldAxioms) {
  int S = GetParam();
  Rational A(S * 3 + 1, S + 2);
  Rational B(S - 7, 2 * S + 3);
  Rational C(5, S + 11);
  EXPECT_EQ(A + B, B + A);
  EXPECT_EQ(A * B, B * A);
  EXPECT_EQ((A + B) + C, A + (B + C));
  EXPECT_EQ(A * (B + C), A * B + A * C);
  EXPECT_EQ(A - A, Rational(0));
  if (!B.isZero()) {
    EXPECT_EQ(A / B * B, A);
  }
}

TEST_P(RationalPropertyTest, FloorCeilBracket) {
  int S = GetParam();
  Rational R(S * 13 - 7, 11);
  EXPECT_LE(Rational(R.floor()), R);
  EXPECT_GE(Rational(R.ceil()), R);
  EXPECT_LE(R.ceil() - R.floor(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RationalPropertyTest,
                         ::testing::Range(1, 40));

} // namespace
