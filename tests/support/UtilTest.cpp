//===- tests/support/UtilTest.cpp - Stats / strings / RNG / tables ----------===//

#include "support/RNG.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4, 1}), 2.0);
  EXPECT_NEAR(geomean({2, 2, 2}), 2.0, 1e-12);
}

TEST(Stats, Stddev) {
  EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0);
  EXPECT_NEAR(stddev({1, 3}), 1.0, 1e-12);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0);
}

TEST(Stats, Accumulator) {
  Accumulator A;
  A.add(2);
  A.add(6);
  A.add(4);
  EXPECT_EQ(A.count(), 3u);
  EXPECT_DOUBLE_EQ(A.mean(), 4);
  EXPECT_DOUBLE_EQ(A.min(), 2);
  EXPECT_DOUBLE_EQ(A.max(), 6);
  EXPECT_DOUBLE_EQ(A.sum(), 12);
}

TEST(StrUtil, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatString("%.2f", 1.234), "1.23");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StrUtil, Split) {
  auto T = splitString("  a b\tc  ");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0], "a");
  EXPECT_EQ(T[2], "c");
  EXPECT_TRUE(splitString("   ").empty());
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trimString("  x y  "), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString(" \t\n "), "");
}

TEST(StrUtil, ParseInt64) {
  int64_t V = 0;
  EXPECT_TRUE(parseInt64("-42", V));
  EXPECT_EQ(V, -42);
  EXPECT_FALSE(parseInt64("12x", V));
  EXPECT_FALSE(parseInt64("", V));
}

TEST(StrUtil, ParseDouble) {
  double V = 0;
  EXPECT_TRUE(parseDouble("2.5", V));
  EXPECT_DOUBLE_EQ(V, 2.5);
  EXPECT_FALSE(parseDouble("abc", V));
}

TEST(RNG, Deterministic) {
  RNG A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(RNG, RangesRespected) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInt(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

// Golden pin: seed 42's first draws, fixed forever. A platform or
// refactor that changes the stream breaks reproducibility of every
// seeded experiment; this test makes that loud.
TEST(RNG, CrossPlatformGoldenStream) {
  RNG R(42);
  const uint64_t Expected[] = {0x15780b2e0c2ec716ull, 0x6104d9866d113a7eull,
                               0xae17533239e499a1ull, 0xecb8ad4703b360a1ull};
  for (uint64_t E : Expected)
    EXPECT_EQ(R.next(), E);
  RNG D(RNG::DefaultSeed);
  EXPECT_EQ(D.next(), 0x422ea740d0977210ull);
}

TEST(RNG, ForkIsDeterministicAndIndependent) {
  RNG Root(42);
  RNG A = Root.fork(7), B = Root.fork(7), C = Root.fork(8);
  EXPECT_EQ(A.next(), 0x618b064163aac1e2ull); // pinned child stream
  (void)B;
  // Same stream id twice agrees, different stream ids diverge, and
  // forking does not advance the parent.
  RNG X = Root.fork(9), Y = Root.fork(9);
  bool Same = true, Diff = false;
  for (int I = 0; I < 20; ++I) {
    uint64_t V = X.next();
    Same &= V == Y.next();
    Diff |= V != C.next();
  }
  EXPECT_TRUE(Same);
  EXPECT_TRUE(Diff);
  RNG Fresh(42);
  EXPECT_EQ(Root.next(), Fresh.next());
}

TEST(RNG, NextIntFullRangeIsDefined) {
  RNG R(5);
  for (int I = 0; I < 10; ++I) {
    int64_t V = R.nextInt(INT64_MIN, INT64_MAX);
    (void)V; // any value is in range; this must not divide by zero
  }
  for (int I = 0; I < 100; ++I) {
    int64_t V = R.nextInt(INT64_MAX - 2, INT64_MAX);
    EXPECT_GE(V, INT64_MAX - 2);
  }
}

TEST(RNG, ShuffleIsPermutation) {
  RNG R(11);
  std::vector<int> V = {1, 2, 3, 4, 5, 6};
  auto Sorted = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Sorted);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T("t");
  T.addRow({"a", "bbbb"});
  T.addRow({"cccc", "d"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("== t =="), std::string::npos);
  EXPECT_NE(Out.find("a     bbbb"), std::string::npos);
  EXPECT_NE(Out.find("cccc  d"), std::string::npos);
}

TEST(TablePrinter, EmptyAndRagged) {
  TablePrinter T;
  EXPECT_EQ(T.render(), "");
  T.addRow({"h1", "h2", "h3"});
  T.addRow({"x"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("h3"), std::string::npos);
}

} // namespace
