//===- tests/support/UtilTest.cpp - Stats / strings / RNG / tables ----------===//

#include "support/RNG.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4, 1}), 2.0);
  EXPECT_NEAR(geomean({2, 2, 2}), 2.0, 1e-12);
}

TEST(Stats, Stddev) {
  EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0);
  EXPECT_NEAR(stddev({1, 3}), 1.0, 1e-12);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0);
}

TEST(Stats, Accumulator) {
  Accumulator A;
  A.add(2);
  A.add(6);
  A.add(4);
  EXPECT_EQ(A.count(), 3u);
  EXPECT_DOUBLE_EQ(A.mean(), 4);
  EXPECT_DOUBLE_EQ(A.min(), 2);
  EXPECT_DOUBLE_EQ(A.max(), 6);
  EXPECT_DOUBLE_EQ(A.sum(), 12);
}

TEST(StrUtil, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatString("%.2f", 1.234), "1.23");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StrUtil, Split) {
  auto T = splitString("  a b\tc  ");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0], "a");
  EXPECT_EQ(T[2], "c");
  EXPECT_TRUE(splitString("   ").empty());
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trimString("  x y  "), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString(" \t\n "), "");
}

TEST(StrUtil, ParseInt64) {
  int64_t V = 0;
  EXPECT_TRUE(parseInt64("-42", V));
  EXPECT_EQ(V, -42);
  EXPECT_FALSE(parseInt64("12x", V));
  EXPECT_FALSE(parseInt64("", V));
}

TEST(StrUtil, ParseDouble) {
  double V = 0;
  EXPECT_TRUE(parseDouble("2.5", V));
  EXPECT_DOUBLE_EQ(V, 2.5);
  EXPECT_FALSE(parseDouble("abc", V));
}

TEST(RNG, Deterministic) {
  RNG A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(RNG, RangesRespected) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInt(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, ShuffleIsPermutation) {
  RNG R(11);
  std::vector<int> V = {1, 2, 3, 4, 5, 6};
  auto Sorted = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Sorted);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T("t");
  T.addRow({"a", "bbbb"});
  T.addRow({"cccc", "d"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("== t =="), std::string::npos);
  EXPECT_NE(Out.find("a     bbbb"), std::string::npos);
  EXPECT_NE(Out.find("cccc  d"), std::string::npos);
}

TEST(TablePrinter, EmptyAndRagged) {
  TablePrinter T;
  EXPECT_EQ(T.render(), "");
  T.addRow({"h1", "h2", "h3"});
  T.addRow({"x"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("h3"), std::string::npos);
}

} // namespace
