//===- tests/vliwsim/SimulatorTest.cpp - Functional + pipelined sims --------===//

#include "ir/LoopDSL.h"
#include "partition/LoopScheduler.h"
#include "vliwsim/PipelinedSimulator.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

TEST(MemoryImage, DeterministicFill) {
  Loop L = parseSingleLoop(R"(
loop t trip=8
  arrays A B
  x = load A
  store B x
endloop
)");
  MemoryImage M1 = MemoryImage::initial(L, 8);
  MemoryImage M2 = MemoryImage::initial(L, 8);
  EXPECT_TRUE(M1 == M2);
  EXPECT_EQ(M1.digest(), M2.digest());
  ASSERT_EQ(M1.Arrays.size(), 2u);
  // Different arrays get different fills.
  EXPECT_NE(M1.Arrays[0][0], M1.Arrays[1][0]);
  // Values live in [0.5, 1.5).
  for (double V : M1.Arrays[0]) {
    EXPECT_GE(V, 0.5);
    EXPECT_LT(V, 1.5);
  }
}

TEST(MemoryImage, NegativeAddressesWrap) {
  EXPECT_EQ(MemoryImage::elementIndex(-1, 10), 9u);
  EXPECT_EQ(MemoryImage::elementIndex(-10, 10), 0u);
  EXPECT_EQ(MemoryImage::elementIndex(23, 10), 3u);
}

TEST(EvalOpcode, Semantics) {
  EXPECT_DOUBLE_EQ(evalOpcode(Opcode::FAdd, 2, 3), 5);
  EXPECT_DOUBLE_EQ(evalOpcode(Opcode::FSub, 2, 3), -1);
  EXPECT_DOUBLE_EQ(evalOpcode(Opcode::FMul, 2, 3), 6);
  EXPECT_DOUBLE_EQ(evalOpcode(Opcode::FDiv, 6, 3), 2);
  EXPECT_DOUBLE_EQ(evalOpcode(Opcode::FDiv, 6, 0), 0); // guarded
  EXPECT_DOUBLE_EQ(evalOpcode(Opcode::FSqrt, -9, 0), 3);
  EXPECT_DOUBLE_EQ(evalOpcode(Opcode::Copy, 7, 0), 7);
}

TEST(FunctionalSim, AccumulatorClosedForm) {
  // s_i = s_{i-1} + 2 with s_{-1} = 10 - 1*1 (init 10, step 1 at iter
  // -1 gives 9): s_i = 9 + 2*(i+1).
  Loop L = parseSingleLoop(R"(
loop acc trip=5
  arrays O
  s = fadd s@1 #2 init=10 step=1
  store O s
endloop
)");
  FunctionalResult R = runFunctional(L, 5);
  EXPECT_DOUBLE_EQ(R.LastValues[0], 9 + 2 * 5);
  // Stored values: O[i] = 9 + 2*(i+1).
  for (int I = 0; I < 5; ++I)
    EXPECT_DOUBLE_EQ(R.Memory.Arrays[0][static_cast<size_t>(I)],
                     9 + 2 * (I + 1));
}

TEST(FunctionalSim, InitStepFunction) {
  // x uses itself at distance 3: first three iterations read the init
  // function Init + Step*iter at iters -3, -2, -1.
  Loop L = parseSingleLoop(R"(
loop init trip=3
  arrays O
  x = fadd x@3 #0 init=100 step=10
  store O x
endloop
)");
  FunctionalResult R = runFunctional(L, 3);
  EXPECT_DOUBLE_EQ(R.Memory.Arrays[0][0], 100 + 10 * -3);
  EXPECT_DOUBLE_EQ(R.Memory.Arrays[0][1], 100 + 10 * -2);
  EXPECT_DOUBLE_EQ(R.Memory.Arrays[0][2], 100 + 10 * -1);
}

TEST(FunctionalSim, StoreToLoadForwardingAcrossIterations) {
  // store A[i+1] = A[i] + 1 creates a running chain through memory.
  Loop L = parseSingleLoop(R"(
loop chain trip=4
  arrays A
  x = load A
  y = fadd x #1
  store A y off=1
endloop
)");
  MemoryImage Init = MemoryImage::initial(L, 4);
  double A0 = Init.Arrays[0][0];
  FunctionalResult R = runFunctional(L, 4);
  // A[4] = A0 + 4 after four iterations of the chain.
  EXPECT_DOUBLE_EQ(R.Memory.Arrays[0][4], A0 + 4);
}

TEST(PipelinedSim, MatchesExecTimeFormula) {
  Loop L = makeStreamLoop("s", 3, 20, 1.0);
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success);
  PipelinedResult Sim = runPipelined(L, R.PG, R.Sched, M, 20);
  ASSERT_TRUE(Sim.Ok) << Sim.Error;
  EXPECT_EQ(Sim.TexecNs, R.Sched.execTimeNs(R.PG, 20));
}

TEST(PipelinedSim, CountsActivity) {
  Loop L = makeStreamLoop("s", 3, 10, 1.0); // 3 lanes: 9 mem, 6 fp
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success);
  PipelinedResult Sim = runPipelined(L, R.PG, R.Sched, M, 10);
  ASSERT_TRUE(Sim.Ok);
  EXPECT_DOUBLE_EQ(Sim.Activity.MemAccesses, 9.0 * 10);
  double WPerIter = 0;
  for (const auto &O : L.Ops)
    WPerIter += M.Isa.energy(O.Op);
  EXPECT_NEAR(Sim.Activity.WeightedIns, WPerIter * 10, 1e-9);
  EXPECT_DOUBLE_EQ(Sim.Activity.Comms,
                   static_cast<double>(R.PG.numCopies()) * 10);
  double ClusterSum = 0;
  for (double W : Sim.WInsPerCluster)
    ClusterSum += W;
  EXPECT_NEAR(ClusterSum, Sim.Activity.WeightedIns, 1e-9);
}

TEST(PipelinedSim, DetectsBrokenTiming) {
  Loop L = parseSingleLoop(R"(
loop t trip=8
  arrays A O
  x = load A
  y = fmul x x
  store O y
endloop
)");
  MachineDescription M = MachineDescription::paperDefault();
  HeteroConfig C = HeteroConfig::reference(M);
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success);
  // Corrupt: issue the fmul at the load's slot (before data is ready).
  Schedule Bad = R.Sched;
  Bad.Nodes[1].Slot = Bad.Nodes[0].Slot;
  PipelinedResult Sim = runPipelined(L, R.PG, Bad, M, 8);
  EXPECT_FALSE(Sim.Ok);
  EXPECT_NE(Sim.Error.find("before its arrival"), std::string::npos);
}

class EquivalencePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EquivalencePropertyTest, PipelinedEqualsSequential) {
  auto [Seed, Buses] = GetParam();
  RNG Rng(0xabcdef ^ (static_cast<uint64_t>(Seed) << 10));
  RandomLoopParams Params;
  Params.MinOps = 10;
  Params.MaxOps = 34;
  Params.Trip = 40;
  Loop L = makeRandomLoop(Rng, Params, "equiv");

  MachineDescription M =
      MachineDescription::paperDefault(static_cast<unsigned>(Buses));
  HeteroConfig C = HeteroConfig::reference(M);
  // Alternate heterogeneous shapes by seed.
  if (Seed % 2) {
    C.Clusters[0].PeriodNs = Rational(19, 20);
    for (unsigned I = 1; I < 4; ++I)
      C.Clusters[I].PeriodNs = Rational(19, 16); // 0.95 * 5/4
    C.Icn.PeriodNs = Rational(19, 20);
    C.Cache.PeriodNs = Rational(19, 20);
  }
  LoopScheduler Sched(M, C);
  LoopScheduleResult R = Sched.schedule(L);
  ASSERT_TRUE(R.Success) << R.Failure;
  EXPECT_EQ(checkFunctionalEquivalence(L, R.PG, R.Sched, M, 40), "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquivalencePropertyTest,
                         ::testing::Combine(::testing::Range(0, 20),
                                            ::testing::Values(1, 2)));

} // namespace
