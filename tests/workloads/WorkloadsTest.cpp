//===- tests/workloads/WorkloadsTest.cpp - Synthetic workload suite ---------===//

#include "ir/RecurrenceAnalysis.h"
#include "machine/MachineDescription.h"
#include "workloads/SpecFPSuite.h"
#include "workloads/SyntheticLoops.h"

#include <gtest/gtest.h>

using namespace hcvliw;

namespace {

struct LoopStats {
  int64_t RecMII;
  int64_t ResMII;
};

LoopStats statsOf(const Loop &L) {
  MachineDescription M = MachineDescription::paperDefault();
  DDG G = DDG::build(L);
  RecurrenceInfo R = analyzeRecurrences(G, M.Isa.nodeLatencies(L));
  return {R.RecMII, M.computeResMII(L)};
}

TEST(Generators, StreamLoopIsResourceConstrained) {
  for (unsigned Lanes : {2u, 4u, 6u, 8u}) {
    Loop L = makeStreamLoop("s", Lanes, 32, 1.0);
    EXPECT_EQ(L.validate(), "");
    LoopStats S = statsOf(L);
    EXPECT_EQ(S.RecMII, 0) << Lanes;
    EXPECT_EQ(S.ResMII, (3 * Lanes + 3) / 4) << Lanes; // mem-bound
  }
}

TEST(Generators, StencilLoopShape) {
  Loop L = makeStencilLoop("st", 8, 32, 1.0);
  EXPECT_EQ(L.validate(), "");
  LoopStats S = statsOf(L);
  EXPECT_EQ(S.RecMII, 0);
  EXPECT_EQ(S.ResMII, 3); // 9 memory ops over 4 ports
}

TEST(Generators, ChainRecurrenceRecMII) {
  // recMII = ceil((6*M + 3*A) / dist).
  struct Case {
    unsigned Muls, Adds, Dist;
    int64_t Want;
  } Cases[] = {{1, 2, 1, 12}, {0, 3, 1, 9}, {0, 4, 2, 6}, {2, 0, 1, 12},
               {1, 1, 2, 5},  {0, 1, 1, 3}};
  for (const auto &C : Cases) {
    Loop L = makeChainRecurrenceLoop("r", C.Muls, C.Adds, C.Dist, 2, 32,
                                     1.0);
    EXPECT_EQ(L.validate(), "");
    EXPECT_EQ(statsOf(L).RecMII, C.Want)
        << C.Muls << "/" << C.Adds << "/" << C.Dist;
  }
}

TEST(Generators, WideRecurrenceManyCriticalOps) {
  Loop L = makeWideRecurrenceLoop("w", 8, 2, 2, 32, 1.0);
  EXPECT_EQ(L.validate(), "");
  DDG G = DDG::build(L);
  MachineDescription M = MachineDescription::paperDefault();
  RecurrenceInfo R = analyzeRecurrences(G, M.Isa.nodeLatencies(L));
  ASSERT_EQ(R.Recurrences.size(), 1u);
  EXPECT_EQ(R.Recurrences[0].Nodes.size(), 8u);
  EXPECT_EQ(R.RecMII, 12);
}

TEST(Generators, BorderlineLandsBetween) {
  Loop L = makeBorderlineLoop("b", 6, 2, 32, 1.0);
  EXPECT_EQ(L.validate(), "");
  LoopStats S = statsOf(L);
  EXPECT_GE(S.RecMII, S.ResMII);
  EXPECT_LT(10 * S.RecMII, 13 * S.ResMII);
}

TEST(Generators, RandomLoopsAlwaysValid) {
  RandomLoopParams P;
  for (uint64_t Seed = 0; Seed < 60; ++Seed) {
    RNG Rng(Seed * 31337 + 7);
    Loop L = makeRandomLoop(Rng, P, "rand");
    EXPECT_EQ(L.validate(), "") << "seed " << Seed;
    EXPECT_GE(L.size(), P.MinOps);
    bool HasStore = false;
    for (const auto &O : L.Ops)
      HasStore |= isStoreOpcode(O.Op);
    EXPECT_TRUE(HasStore) << "seed " << Seed;
  }
}

TEST(Generators, RandomLoopsDeterministicPerSeed) {
  RandomLoopParams P;
  RNG A(42), B(42);
  Loop LA = makeRandomLoop(A, P, "x");
  Loop LB = makeRandomLoop(B, P, "x");
  ASSERT_EQ(LA.size(), LB.size());
  for (unsigned I = 0; I < LA.size(); ++I)
    EXPECT_EQ(LA.Ops[I].Op, LB.Ops[I].Op);
}

TEST(Suite, AllProgramsPresent) {
  auto Suite = buildSpecFPSuite();
  ASSERT_EQ(Suite.size(), 10u);
  EXPECT_EQ(Suite[0].Name, "168.wupwise");
  EXPECT_EQ(Suite[8].Name, "200.sixtrack");
  for (const auto &Prog : Suite) {
    EXPECT_FALSE(Prog.Loops.empty());
    double W = 0;
    for (const auto &L : Prog.Loops) {
      EXPECT_EQ(L.validate(), "") << Prog.Name << "/" << L.Name;
      W += L.Weight;
    }
    EXPECT_NEAR(W, 1.0, 1e-6) << Prog.Name;
  }
}

TEST(Suite, SwimIsAllResourceConstrained) {
  BenchmarkProgram P = buildSpecFPProgram("171.swim");
  for (const auto &L : P.Loops) {
    LoopStats S = statsOf(L);
    EXPECT_LT(S.RecMII, S.ResMII) << L.Name;
  }
}

TEST(Suite, SixtrackIsRecurrenceDominated) {
  BenchmarkProgram P = buildSpecFPProgram("200.sixtrack");
  double RecWeight = 0;
  for (const auto &L : P.Loops) {
    LoopStats S = statsOf(L);
    if (10 * S.RecMII >= 13 * S.ResMII)
      RecWeight += L.Weight;
  }
  EXPECT_GT(RecWeight, 0.99);
}

TEST(Suite, Fma3dRecurrencesAreWide) {
  BenchmarkProgram P = buildSpecFPProgram("191.fma3d");
  MachineDescription M = MachineDescription::paperDefault();
  bool FoundWide = false;
  for (const auto &L : P.Loops) {
    DDG G = DDG::build(L);
    RecurrenceInfo R = analyzeRecurrences(G, M.Isa.nodeLatencies(L));
    for (const auto &Rec : R.Recurrences)
      FoundWide |= Rec.Nodes.size() >= 8;
  }
  EXPECT_TRUE(FoundWide);
}

TEST(Suite, ByNameMatchesSuite) {
  for (const auto &Name : specFPProgramNames()) {
    BenchmarkProgram P = buildSpecFPProgram(Name);
    EXPECT_EQ(P.Name, Name);
  }
}

} // namespace
