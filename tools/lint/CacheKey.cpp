//===- tools/lint/CacheKey.cpp - Cache-key completeness rule ----------------===//
///
/// ScheduleCache/EvalCache rest on "equal keys hash equal scheduling
/// inputs": every field of a key struct must appear in BOTH its
/// operator== and its companion hash functor, or a newly added field
/// silently stops distinguishing entries (== misses it) or stops
/// spreading them (hash misses it). This rule re-derives the three
/// field sets per key struct and cross-checks them.
///
/// A "key struct" is detected structurally, not by name: any struct
/// with an in-class operator== that some sibling hash functor (a
/// struct whose name contains "Hash", with an operator() taking the
/// key type) consumes. Plain value types with == but no hash partner
/// (Rational, MemoryImage) are out of scope.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <set>

using namespace hcvliw::lint;

namespace {

struct StructSpan {
  std::string Name;
  size_t BodyOpen;  ///< index of '{'
  size_t BodyClose; ///< index of matching '}'
  unsigned Line;
};

/// Every struct/class definition in the token stream (including nested
/// ones — each is analyzed independently).
std::vector<StructSpan> findStructs(const std::vector<Token> &Toks) {
  std::vector<StructSpan> Spans;
  for (size_t I = 0; I + 2 < Toks.size(); ++I) {
    if (!(Toks[I].ident("struct") || Toks[I].ident("class")))
      continue;
    if (Toks[I + 1].K != Token::Ident)
      continue; // anonymous / alignas(...) first — keep it simple
    size_t J = I + 2;
    // Skip 'final' and a base-clause up to the body.
    while (J < Toks.size() && !Toks[J].punct("{") && !Toks[J].punct(";"))
      ++J;
    if (J >= Toks.size() || Toks[J].punct(";"))
      continue; // forward declaration
    size_t Close = matchForward(Toks, J);
    if (Close >= Toks.size())
      continue;
    Spans.push_back({Toks[I + 1].Text, J, Close, Toks[I].Line});
  }
  return Spans;
}

const std::set<std::string> NonFieldLeaders = {
    "struct", "class",   "using",  "typedef",  "friend",
    "static", "enum",    "template", "public", "private",
    "protected", "operator", "explicit", "virtual", "static_assert"};

/// Non-static data member names declared at the struct's top level.
std::set<std::string> collectFields(const std::vector<Token> &Toks,
                                    const StructSpan &S) {
  std::set<std::string> Fields;
  size_t I = S.BodyOpen + 1;
  std::vector<size_t> Stmt; // token indices of the current declaration
  int AngleDepth = 0;
  bool Skip = false;

  auto flush = [&]() {
    if (!Skip && !Stmt.empty()) {
      bool HasParen = false;
      for (size_t Ix : Stmt)
        if (Toks[Ix].punct("("))
          HasParen = true;
      if (!HasParen) {
        // Names are identifiers immediately before '=', ',', ';', '[',
        // '{' at angle depth 0 — handled by remembering the previous
        // identifier as we re-walk the statement.
        int Angle = 0;
        for (size_t K = 0; K < Stmt.size(); ++K) {
          const Token &T = Toks[Stmt[K]];
          if (T.punct("<"))
            ++Angle;
          else if (T.punct(">"))
            Angle = Angle > 0 ? Angle - 1 : 0;
          else if (Angle == 0 && K > 0 &&
                   (T.punct("=") || T.punct(",") || T.punct("[") ||
                    T.punct("{")) &&
                   Toks[Stmt[K - 1]].K == Token::Ident)
            Fields.insert(Toks[Stmt[K - 1]].Text);
        }
        if (!Stmt.empty() && Toks[Stmt.back()].K == Token::Ident)
          Fields.insert(Toks[Stmt.back()].Text);
      }
    }
    Stmt.clear();
    Skip = false;
  };

  while (I < S.BodyClose) {
    const Token &T = Toks[I];
    if (T.punct("{")) {
      // Brace initializer (prev is an identifier) stays part of the
      // declaration; anything else is a nested body to step over.
      bool BraceInit = !Stmt.empty() && Toks[Stmt.back()].K == Token::Ident &&
                       !NonFieldLeaders.count(Toks[Stmt.back()].Text);
      size_t Close = matchForward(Toks, I);
      if (BraceInit)
        Stmt.push_back(I);
      else
        Skip = true; // function / nested struct: not a field declaration
      I = Close + 1;
      if (!BraceInit)
        flush();
      continue;
    }
    if (T.punct(";")) {
      flush();
      ++I;
      continue;
    }
    if (T.punct(":") && AngleDepth == 0 && Stmt.size() == 1 &&
        NonFieldLeaders.count(Toks[Stmt[0]].Text)) {
      Stmt.clear(); // access specifier: the next declaration starts fresh
      Skip = false;
      ++I;
      continue;
    }
    if (Stmt.empty() && T.K == Token::Ident && NonFieldLeaders.count(T.Text))
      Skip = true;
    if (T.punct("<"))
      ++AngleDepth;
    else if (T.punct(">"))
      AngleDepth = AngleDepth > 0 ? AngleDepth - 1 : 0;
    Stmt.push_back(I);
    ++I;
  }
  return Fields;
}

/// Identifiers in [Begin, End) that are also field names.
std::set<std::string> referencedFields(const std::vector<Token> &Toks,
                                       size_t Begin, size_t End,
                                       const std::set<std::string> &Fields) {
  std::set<std::string> Refs;
  for (size_t I = Begin; I < End && I < Toks.size(); ++I)
    if (Toks[I].K == Token::Ident && Fields.count(Toks[I].Text))
      Refs.insert(Toks[I].Text);
  return Refs;
}

/// Body span of the in-class operator== (token index of '{'..'}'), or
/// {0,0} when absent or bodiless.
std::pair<size_t, size_t> findEqualsBody(const std::vector<Token> &Toks,
                                         const StructSpan &S) {
  for (size_t I = S.BodyOpen; I + 1 < S.BodyClose; ++I) {
    if (!Toks[I].ident("operator") || !Toks[I + 1].punct("=="))
      continue;
    size_t J = I + 2;
    while (J < S.BodyClose && !Toks[J].punct("{") && !Toks[J].punct(";"))
      ++J;
    if (J >= S.BodyClose || Toks[J].punct(";"))
      return {0, 0};
    return {J, matchForward(Toks, J)};
  }
  return {0, 0};
}

/// For a hash functor: the '(' of operator()'s parameter list, or 0.
size_t findCallOperatorParams(const std::vector<Token> &Toks,
                              const StructSpan &S) {
  for (size_t I = S.BodyOpen; I + 3 < S.BodyClose; ++I)
    if (Toks[I].ident("operator") && Toks[I + 1].punct("(") &&
        Toks[I + 2].punct(")") && Toks[I + 3].punct("("))
      return I + 3;
  return 0;
}

std::string joinSorted(const std::set<std::string> &S) {
  std::string Out;
  for (const std::string &X : S) {
    if (!Out.empty())
      Out += ", ";
    Out += X;
  }
  return Out;
}

} // namespace

void hcvliw::lint::checkCacheKeys(const SourceFile &F,
                                  std::vector<Violation> &Out) {
  const std::vector<Token> &Toks = F.Toks;
  std::vector<StructSpan> Spans = findStructs(Toks);

  for (const StructSpan &Key : Spans) {
    auto EqBody = findEqualsBody(Toks, Key);
    if (EqBody.second == 0)
      continue;

    // A companion hash functor in the same file whose operator() takes
    // this struct.
    const StructSpan *Hash = nullptr;
    size_t HashParams = 0;
    for (const StructSpan &H : Spans) {
      if (H.Name.find("Hash") == std::string::npos || &H == &Key)
        continue;
      size_t P = findCallOperatorParams(Toks, H);
      if (!P)
        continue;
      size_t PClose = matchForward(Toks, P);
      bool TakesKey = false;
      for (size_t I = P; I < PClose; ++I)
        if (Toks[I].ident(Key.Name))
          TakesKey = true;
      if (TakesKey) {
        Hash = &H;
        HashParams = P;
        break;
      }
    }
    if (!Hash)
      continue; // == without a hash partner: not a cache key

    std::set<std::string> Fields = collectFields(Toks, Key);
    if (Fields.empty())
      continue;
    std::set<std::string> EqRefs =
        referencedFields(Toks, EqBody.first, EqBody.second, Fields);
    size_t HashBodyOpen = matchForward(Toks, HashParams) + 1;
    while (HashBodyOpen < Hash->BodyClose && !Toks[HashBodyOpen].punct("{"))
      ++HashBodyOpen;
    std::set<std::string> HashRefs = referencedFields(
        Toks, HashBodyOpen, matchForward(Toks, HashBodyOpen), Fields);

    std::set<std::string> MissEq, MissHash;
    for (const std::string &Fld : Fields) {
      if (!EqRefs.count(Fld))
        MissEq.insert(Fld);
      if (!HashRefs.count(Fld))
        MissHash.insert(Fld);
    }
    if (!MissEq.empty())
      Out.push_back({"cache-key", F.RelPath, Key.Line,
                     "key struct '" + Key.Name +
                         "' has fields not compared by operator==: {" +
                         joinSorted(MissEq) +
                         "} — equal keys would no longer mean equal inputs"});
    if (!MissHash.empty())
      Out.push_back({"cache-key", F.RelPath, Hash->Line,
                     "hash functor '" + Hash->Name +
                         "' ignores fields of '" + Key.Name + "': {" +
                         joinSorted(MissHash) +
                         "} — keys differing only there collide "
                         "systematically"});
  }
}
