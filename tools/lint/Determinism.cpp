//===- tools/lint/Determinism.cpp - Determinism-hazard rules ----------------===//
///
/// Result-producing layers (src/** minus src/obs) must be pure
/// functions of their declared inputs: the bit-identity contracts
/// (any-thread-count, warm==cold, traced==untraced) all rest on that.
/// This file flags the constructs that historically break it:
///
///   - wall-clock reads (det-clock): results must not depend on time;
///     observability samples time via obs::Stopwatch instead.
///   - ambient randomness (det-rand): all RNG flows through
///     support/RNG.h with explicit seeds.
///   - pointer-keyed ordered containers (det-ptr-key): iteration order
///     is address order, which varies run to run.
///   - unordered-container iteration that writes non-local state
///     (det-unordered-iter): the iteration order is unspecified, so
///     any order-sensitive fold laundered through it is nondeterministic.
///     Order-*insensitive* folds (counter sums, max) are legitimate and
///     go in the allowlist with their justification.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <algorithm>
#include <set>

using namespace hcvliw::lint;

namespace {

bool isObsLayer(const SourceFile &F) { return F.Dir == "obs"; }

const std::set<std::string> ClockIdents = {
    "steady_clock", "system_clock", "high_resolution_clock"};
const std::set<std::string> FreeCallHazards = {"time", "clock", "rand",
                                               "srand"};
const std::set<std::string> OrderedContainers = {"map", "set", "multimap",
                                                 "multiset"};
const std::set<std::string> UnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
/// Member calls that mutate their receiver. Heuristic by design: a
/// bespoke mutator named otherwise needs a human eye anyway.
const std::set<std::string> MutatingMembers = {
    "push_back", "pop_back", "emplace", "emplace_back", "insert", "erase",
    "clear",     "assign",   "resize",  "reserve",      "push",   "pop",
    "append"};
const std::set<std::string> NotATypeKeyword = {
    "return", "else",  "new",   "delete", "case",     "goto",  "break",
    "continue", "sizeof", "typename", "throw", "do", "in", "co_return"};

/// True when Toks[I] is a call to a free function (not a member, not a
/// non-std qualified name).
bool isFreeCall(const std::vector<Token> &Toks, size_t I) {
  if (I + 1 >= Toks.size() || !Toks[I + 1].punct("("))
    return false;
  if (I == 0)
    return true;
  const Token &Prev = Toks[I - 1];
  if (Prev.punct(".") || Prev.punct("->"))
    return false;
  if (Prev.punct("::"))
    return I >= 2 && Toks[I - 2].ident("std");
  return true;
}

/// Root identifier of the primary expression ending at \p End
/// (inclusive): walks left over member chains, subscripts and call
/// parens; e.g. for `A.B[I].C` returns "A".
std::string rootOfChain(const std::vector<Token> &Toks, size_t End) {
  size_t I = End;
  std::string Root;
  while (true) {
    const Token &T = Toks[I];
    if (T.punct("]") || T.punct(")")) {
      // Walk back over the bracketed group.
      std::string Open = T.Text == "]" ? "[" : "(";
      int Depth = 0;
      size_t J = I;
      while (true) {
        if (Toks[J].punct(T.Text))
          ++Depth;
        else if (Toks[J].punct(Open) && --Depth == 0)
          break;
        if (J == 0)
          return Root;
        --J;
      }
      if (J == 0)
        return Root;
      I = J - 1;
      continue;
    }
    if (T.K == Token::Ident) {
      Root = T.Text;
      if (I >= 2 && (Toks[I - 1].punct(".") || Toks[I - 1].punct("->") ||
                     Toks[I - 1].punct("::"))) {
        I -= 2;
        continue;
      }
      return Root;
    }
    if (T.punct("*") || T.punct("&")) {
      if (I == 0)
        return Root;
      --I;
      continue;
    }
    return Root;
  }
}

/// Names declared with an unordered_{map,set,...} type anywhere in the
/// file (members, locals, parameters). Misses typedef'd aliases — the
/// fixtures document the supported shapes.
std::set<std::string> unorderedVarNames(const std::vector<Token> &Toks) {
  std::set<std::string> Names;
  for (size_t I = 0; I + 1 < Toks.size(); ++I) {
    if (Toks[I].K != Token::Ident || !UnorderedContainers.count(Toks[I].Text))
      continue;
    if (!Toks[I + 1].punct("<"))
      continue;
    // Skip the template argument list by angle depth.
    int Depth = 0;
    size_t J = I + 1;
    for (; J < Toks.size(); ++J) {
      if (Toks[J].punct("<"))
        ++Depth;
      else if (Toks[J].punct(">") && --Depth == 0)
        break;
    }
    if (J >= Toks.size())
      continue;
    ++J;
    while (J < Toks.size() &&
           (Toks[J].punct("&") || Toks[J].punct("*") || Toks[J].ident("const")))
      ++J;
    if (J < Toks.size() && Toks[J].K == Token::Ident)
      Names.insert(Toks[J].Text);
  }
  return Names;
}

/// Identifiers declared inside a body span [Begin, End): loop-local
/// variables by the `Type Name =` / `auto &Name =` shape.
std::set<std::string> localDecls(const std::vector<Token> &Toks, size_t Begin,
                                 size_t End) {
  std::set<std::string> Locals;
  for (size_t I = Begin + 1; I + 1 < End; ++I) {
    if (Toks[I].K != Token::Ident)
      continue;
    const Token &Prev = Toks[I - 1];
    const Token &Next = Toks[I + 1];
    bool PrevTypeLike =
        (Prev.K == Token::Ident && !NotATypeKeyword.count(Prev.Text)) ||
        Prev.punct(">") || Prev.punct("&") || Prev.punct("*");
    bool NextDeclLike = Next.punct("=") || Next.punct(";") || Next.punct("{");
    if (PrevTypeLike && NextDeclLike &&
        !(I >= 2 && (Toks[I - 2].punct(".") || Toks[I - 2].punct("->") ||
                     Toks[I - 2].punct("::"))))
      Locals.insert(Toks[I].Text);
  }
  return Locals;
}

const std::set<std::string> AssignOps = {"=",  "+=", "-=", "*=", "/=",
                                         "%=", "&=", "|=", "^="};

void checkUnorderedIteration(const SourceFile &F,
                             const std::set<std::string> &UnorderedNames,
                             std::vector<Violation> &Out) {
  const std::vector<Token> &Toks = F.Toks;
  for (size_t I = 0; I + 1 < Toks.size(); ++I) {
    if (!Toks[I].ident("for") || !Toks[I + 1].punct("("))
      continue;
    size_t Open = I + 1, Close = matchForward(Toks, Open);
    if (Close >= Toks.size())
      continue;
    // Range-for: a ':' at paren depth 1 ("::" is one token, so a bare
    // ':' is unambiguous).
    size_t Colon = Toks.size();
    {
      int Depth = 0;
      for (size_t J = Open; J < Close; ++J) {
        if (Toks[J].punct("("))
          ++Depth;
        else if (Toks[J].punct(")"))
          --Depth;
        else if (Toks[J].punct(":") && Depth == 1) {
          Colon = J;
          break;
        }
      }
    }
    if (Colon >= Close)
      continue;
    // Does the range expression name an unordered container?
    std::string Container;
    for (size_t J = Colon + 1; J < Close; ++J)
      if (Toks[J].K == Token::Ident && UnorderedNames.count(Toks[J].Text)) {
        Container = Toks[J].Text;
        break;
      }
    if (Container.empty())
      continue;

    // Loop variables: `auto &KV` or structured binding `[K, V]`.
    std::set<std::string> Locals;
    for (size_t J = Open + 1; J < Colon; ++J)
      if (Toks[J].K == Token::Ident && !Toks[J].ident("auto") &&
          !Toks[J].ident("const"))
        Locals.insert(Toks[J].Text);

    // Body span: ScanBegin is the first *statement* token (past the
    // '{' when braced; a braceless body starts immediately).
    size_t ScanBegin, BodyEnd;
    if (Close + 1 < Toks.size() && Toks[Close + 1].punct("{")) {
      ScanBegin = Close + 2;
      BodyEnd = matchForward(Toks, Close + 1);
    } else {
      ScanBegin = Close + 1;
      BodyEnd = ScanBegin;
      while (BodyEnd < Toks.size() && !Toks[BodyEnd].punct(";"))
        ++BodyEnd;
    }
    if (BodyEnd >= Toks.size())
      continue;
    std::set<std::string> BodyLocals =
        localDecls(Toks, ScanBegin == 0 ? 0 : ScanBegin - 1, BodyEnd);
    Locals.insert(BodyLocals.begin(), BodyLocals.end());

    std::set<std::string> Reported;
    auto report = [&](const std::string &Root, unsigned Line) {
      if (Root.empty() || Locals.count(Root) || !Reported.insert(Root).second)
        return;
      Out.push_back(
          {"det-unordered-iter", F.RelPath, Line,
           "iteration over unordered container '" + Container +
               "' writes to non-local '" + Root +
               "' — unspecified iteration order makes the result "
               "order-dependent (audited order-insensitive folds belong in "
               "the allowlist)"});
    };

    for (size_t J = ScanBegin; J < BodyEnd; ++J) {
      const Token &T = Toks[J];
      if (T.K != Token::Punct)
        continue;
      if (AssignOps.count(T.Text) && J > ScanBegin)
        report(rootOfChain(Toks, J - 1), T.Line);
      else if (T.Text == "++" || T.Text == "--") {
        const Token &Prev = J > ScanBegin ? Toks[J - 1] : Token{};
        if (Prev.K == Token::Ident || Prev.punct("]") || Prev.punct(")"))
          report(rootOfChain(Toks, J - 1), T.Line); // postfix
        else if (J + 1 < BodyEnd && Toks[J + 1].K == Token::Ident)
          report(Toks[J + 1].Text, T.Line); // prefix
      } else if ((T.Text == "." || T.Text == "->") && J + 2 < BodyEnd &&
                 Toks[J + 1].K == Token::Ident &&
                 MutatingMembers.count(Toks[J + 1].Text) &&
                 Toks[J + 2].punct("(") && J > ScanBegin)
        report(rootOfChain(Toks, J - 1), T.Line);
    }
  }
}

} // namespace

void hcvliw::lint::checkDeterminism(const SourceFile &F,
                                    std::vector<Violation> &Out) {
  if (isObsLayer(F))
    return; // obs is the sanctioned observer; bench/examples are not scanned
  const std::vector<Token> &Toks = F.Toks;

  for (size_t I = 0; I < Toks.size(); ++I) {
    const Token &T = Toks[I];
    if (T.K != Token::Ident)
      continue;

    if (ClockIdents.count(T.Text)) {
      Out.push_back({"det-clock", F.RelPath, T.Line,
                     "std::chrono::" + T.Text +
                         " referenced in a result-producing layer — sample "
                         "wall time via obs::Stopwatch (observability-only) "
                         "instead"});
      continue;
    }
    if (T.Text == "random_device") {
      Out.push_back({"det-rand", F.RelPath, T.Line,
                     "std::random_device is ambient entropy — all randomness "
                     "flows through support/RNG.h with explicit seeds"});
      continue;
    }
    if (FreeCallHazards.count(T.Text) && isFreeCall(Toks, I)) {
      Out.push_back({T.Text == "time" || T.Text == "clock" ? "det-clock"
                                                           : "det-rand",
                     F.RelPath, T.Line,
                     "call to " + T.Text +
                         "() in a result-producing layer — results must be "
                         "pure functions of their declared inputs"});
      continue;
    }
    // std::map<T*, ...> / std::set<const T *> etc.
    if (OrderedContainers.count(T.Text) && I >= 2 && Toks[I - 1].punct("::") &&
        Toks[I - 2].ident("std") && I + 1 < Toks.size() &&
        Toks[I + 1].punct("<")) {
      int Depth = 0;
      for (size_t J = I + 1; J < Toks.size(); ++J) {
        if (Toks[J].punct("<"))
          ++Depth;
        else if (Toks[J].punct(">")) {
          if (--Depth == 0)
            break;
        } else if (Toks[J].punct(",") && Depth == 1)
          break;
        else if (Toks[J].punct("*") && Depth == 1) {
          Out.push_back({"det-ptr-key", F.RelPath, T.Line,
                         "std::" + T.Text +
                             " keyed on a pointer — iteration order is "
                             "address order, which varies run to run; key on "
                             "a stable id instead"});
          break;
        }
      }
    }
  }

  checkUnorderedIteration(F, unorderedVarNames(Toks), Out);
}
