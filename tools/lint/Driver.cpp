//===- tools/lint/Driver.cpp - File walk, allowlist, rule dispatch ----------===//

#include "lint/Lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;
using namespace hcvliw::lint;

// --- allowlist -------------------------------------------------------------

namespace {

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

} // namespace

Allowlist Allowlist::parse(const std::string &Path) {
  Allowlist A;
  std::ifstream In(Path);
  if (!In)
    return A; // absent allowlist = no exceptions, not an error
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string Stripped = trim(Line);
    if (Stripped.empty() || Stripped[0] == '#')
      continue;
    // rule | file | message-needle | justification
    std::vector<std::string> Parts;
    std::istringstream LS(Stripped);
    std::string Part;
    while (std::getline(LS, Part, '|'))
      Parts.push_back(trim(Part));
    if (Parts.size() != 4 || Parts[3].empty()) {
      A.Errors.push_back(Path + ":" + std::to_string(LineNo) +
                         ": malformed allowlist entry (want 'rule | file | "
                         "needle | justification', justification mandatory)");
      continue;
    }
    A.Entries.push_back({Parts[0], Parts[1], Parts[2], Parts[3], LineNo,
                         /*Used=*/false});
  }
  return A;
}

Allowlist::Entry *Allowlist::match(const Violation &V) {
  for (Entry &E : Entries) {
    if (E.Rule != V.Rule || E.File != V.File)
      continue;
    if (E.Needle != "*" && V.Message.find(E.Needle) == std::string::npos)
      continue;
    E.Used = true;
    return &E;
  }
  return nullptr;
}

// --- driver ----------------------------------------------------------------

LintResult hcvliw::lint::runLint(const LintOptions &Opts) {
  LintResult R;

  std::string LayersPath = Opts.LayersConf.empty()
                               ? Opts.Root + "/tools/lint/layers.conf"
                               : Opts.LayersConf;
  std::string AllowPath = Opts.AllowlistConf.empty()
                              ? Opts.Root + "/tools/lint/allowlist.conf"
                              : Opts.AllowlistConf;

  LayerMap Layers = LayerMap::parse(LayersPath);
  R.ConfigErrors.insert(R.ConfigErrors.end(), Layers.Errors.begin(),
                        Layers.Errors.end());
  Allowlist Allow = Allowlist::parse(AllowPath);
  R.ConfigErrors.insert(R.ConfigErrors.end(), Allow.Errors.begin(),
                        Allow.Errors.end());

  fs::path SrcRoot = fs::path(Opts.Root) / "src";
  std::error_code EC;
  if (!fs::is_directory(SrcRoot, EC)) {
    R.ConfigErrors.push_back("no src/ directory under root: " + Opts.Root);
    return R;
  }

  // Every directory directly under src/ must be assigned to a layer, so
  // a new subsystem cannot land outside the declared DAG.
  std::vector<std::string> Files;
  for (const auto &Ent : fs::recursive_directory_iterator(SrcRoot)) {
    if (Ent.is_directory()) {
      if (Ent.path().parent_path() == SrcRoot &&
          !Layers.DirRank.count(Ent.path().filename().string()))
        R.ConfigErrors.push_back(
            "src/" + Ent.path().filename().string() +
            " is not assigned to any layer in " + LayersPath +
            " — declare it so its dependencies are checked");
      continue;
    }
    std::string Ext = Ent.path().extension().string();
    if (Ext == ".h" || Ext == ".hpp" || Ext == ".cpp" || Ext == ".cc")
      Files.push_back(Ent.path().string());
  }
  std::sort(Files.begin(), Files.end());

  std::vector<Violation> Raw;
  FaultSiteIndex FaultSites;
  for (const std::string &Path : Files) {
    std::ifstream In(Path);
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Src = Buf.str();

    SourceFile F;
    F.RelPath = fs::relative(Path, Opts.Root).generic_string();
    fs::path Rel = fs::relative(Path, SrcRoot);
    F.Dir = Rel.begin() != Rel.end() && Rel.has_parent_path()
                ? Rel.begin()->string()
                : "";
    F.Toks = tokenize(Src);
    std::istringstream LS(Src);
    std::string Line;
    while (std::getline(LS, Line))
      F.RawLines.push_back(Line);

    checkLayers(F, Layers, Raw);
    checkDeterminism(F, Raw);
    checkObsIsolation(F, Raw);
    checkCacheKeys(F, Raw);
    collectFaultSites(F, FaultSites);
  }
  // Site-name uniqueness is a whole-tree property: check once, after
  // the walk (files were visited in sorted order, so "first use" and
  // therefore the output are stable).
  checkFaultSites(FaultSites, Opts.Root, Raw);

  for (const Violation &V : Raw) {
    if (Allowlist::Entry *E = Allow.match(V))
      R.Suppressed.push_back(V.File + ":" + std::to_string(V.Line) + ": [" +
                             V.Rule + "] allowed: " + E->Justification);
    else
      R.Violations.push_back(V);
  }
  for (const Allowlist::Entry &E : Allow.Entries)
    if (!E.Used)
      R.StaleAllow.push_back(AllowPath + ":" + std::to_string(E.Line) +
                             ": allowlist entry matched nothing (rule=" +
                             E.Rule + ", file=" + E.File +
                             ") — remove it or fix the pattern");
  return R;
}
