//===- tools/lint/FaultSite.cpp - Fault-site registry checking --------------===//
//
// The fault layer's determinism story leans on site names: a FaultPlan
// targets sites by literal name, and replaying a plan requires every
// name to identify exactly one code location with the expected kind
// (point vs degrade). This family makes that contract machine-checked:
//
//   - a HCVLIW_FAULT_POINT / HCVLIW_FAULT_DEGRADE call whose site
//     argument is not a string literal cannot be registered — flagged;
//   - every literal must appear in src/fault/FaultSites.def with the
//     matching kind (a plan that says "degrade" at a point site would
//     silently throw instead);
//   - a literal used at two code locations makes plans ambiguous —
//     flagged at the second location;
//   - a registered site no plan can ever hit (no use in the tree) is
//     stale — flagged on the registry file.
//
// Uniqueness is a whole-tree property, so collection is per file and
// checking runs once after the walk (the one cross-file rule family).
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <fstream>
#include <set>
#include <sstream>

using namespace hcvliw::lint;

void hcvliw::lint::collectFaultSites(const SourceFile &F,
                                     FaultSiteIndex &Idx) {
  const std::vector<Token> &T = F.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    bool Point = T[I].ident("HCVLIW_FAULT_POINT");
    bool Degrade = T[I].ident("HCVLIW_FAULT_DEGRADE");
    if (!Point && !Degrade)
      continue;
    // The macro definitions themselves (and their NO_FAULT stubs) in
    // fault/Fault.h look like `#define HCVLIW_FAULT_POINT(...)`.
    if (I > 0 && T[I - 1].ident("define"))
      continue;
    if (I + 1 >= T.size() || !T[I + 1].punct("("))
      continue;
    FaultSiteIndex::Use U;
    U.Kind = Point ? "point" : "degrade";
    U.File = F.RelPath;
    U.Line = T[I].Line;
    // The site is the macro's SECOND argument, and must be exactly one
    // string literal (an empty Site reports "non-literal"). Split on
    // top-level commas so a parenthesized injector expression cannot
    // shift the argument positions.
    size_t Close = matchForward(T, I + 1);
    int Depth = 0;
    size_t ArgIdx = 0, ArgBegin = I + 2, ArgEnd = 0;
    for (size_t J = I + 2; J < Close && J < T.size(); ++J) {
      if (T[J].punct("(") || T[J].punct("[") || T[J].punct("{"))
        ++Depth;
      else if (T[J].punct(")") || T[J].punct("]") || T[J].punct("}"))
        --Depth;
      else if (Depth == 0 && T[J].punct(",")) {
        ++ArgIdx;
        if (ArgIdx == 1)
          ArgBegin = J + 1;
        else if (ArgIdx == 2) {
          ArgEnd = J;
          break;
        }
      }
    }
    if (ArgIdx >= 2 && ArgEnd == ArgBegin + 1 &&
        T[ArgBegin].K == Token::Str)
      U.Site = T[ArgBegin].Text;
    Idx.Uses.push_back(std::move(U));
  }
}

void hcvliw::lint::checkFaultSites(const FaultSiteIndex &Idx,
                                   const std::string &Root,
                                   std::vector<Violation> &Out) {
  const std::string RegRel = "src/fault/FaultSites.def";

  // Parse the registry: `site <name> <point|degrade>` (comments `#`).
  std::map<std::string, std::string> Registered; // name -> kind
  std::map<std::string, unsigned> RegisteredLine;
  bool HaveRegistry = false;
  {
    std::ifstream In(Root + "/" + RegRel);
    HaveRegistry = static_cast<bool>(In);
    std::string Line;
    unsigned LineNo = 0;
    while (std::getline(In, Line)) {
      ++LineNo;
      if (size_t Hash = Line.find('#'); Hash != std::string::npos)
        Line.resize(Hash);
      std::istringstream LS(Line);
      std::string Kw, Name, Kind;
      if (!(LS >> Kw))
        continue;
      if (Kw != "site" || !(LS >> Name >> Kind) ||
          (Kind != "point" && Kind != "degrade")) {
        Out.push_back({"fault-site", RegRel, LineNo,
                       "malformed registry line (want 'site <name> "
                       "<point|degrade>')"});
        continue;
      }
      if (!Registered.emplace(Name, Kind).second)
        Out.push_back({"fault-site", RegRel, LineNo,
                       "site '" + Name + "' registered twice"});
      else
        RegisteredLine[Name] = LineNo;
    }
  }

  if (Idx.Uses.empty())
    return; // tree without fault sites: registry (or its absence) is moot
  if (!HaveRegistry) {
    Out.push_back({"fault-site", Idx.Uses.front().File, Idx.Uses.front().Line,
                   "fault sites are used but " + RegRel + " is missing"});
    return;
  }

  std::map<std::string, const FaultSiteIndex::Use *> FirstUse;
  std::set<std::string> Used;
  for (const FaultSiteIndex::Use &U : Idx.Uses) {
    if (U.Site.empty()) {
      Out.push_back({"fault-site", U.File, U.Line,
                     "fault site must be a string literal (plans target "
                     "sites by name)"});
      continue;
    }
    Used.insert(U.Site);
    auto It = Registered.find(U.Site);
    if (It == Registered.end()) {
      Out.push_back({"fault-site", U.File, U.Line,
                     "site '" + U.Site + "' is not registered in " + RegRel});
    } else if (It->second != U.Kind) {
      Out.push_back({"fault-site", U.File, U.Line,
                     "site '" + U.Site + "' is registered as '" + It->second +
                         "' but used as '" + U.Kind + "'"});
    }
    auto [FIt, Fresh] = FirstUse.emplace(U.Site, &U);
    if (!Fresh)
      Out.push_back({"fault-site", U.File, U.Line,
                     "site '" + U.Site + "' already used at " +
                         FIt->second->File + ":" +
                         std::to_string(FIt->second->Line) +
                         " — a site names exactly one code location"});
  }

  for (const auto &[Name, Kind] : Registered) {
    (void)Kind;
    if (!Used.count(Name))
      Out.push_back({"fault-site", RegRel, RegisteredLine[Name],
                     "site '" + Name +
                         "' is registered but never used — remove it or "
                         "add the code site"});
  }
}
