//===- tools/lint/Layers.cpp - Layer DAG declaration + include rule ---------===//

#include "lint/Lint.h"

#include <fstream>
#include <sstream>

using namespace hcvliw::lint;

LayerMap LayerMap::parse(const std::string &Path) {
  LayerMap M;
  std::ifstream In(Path);
  if (!In) {
    M.Errors.push_back("cannot open layers config: " + Path);
    return M;
  }
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    std::istringstream LS(Line);
    std::string Kw;
    if (!(LS >> Kw))
      continue;
    if (Kw != "layer") {
      M.Errors.push_back(Path + ":" + std::to_string(LineNo) +
                         ": expected 'layer <name> : <dir>...', got '" + Kw +
                         "'");
      continue;
    }
    std::string Name, Colon;
    if (!(LS >> Name >> Colon) || Colon != ":") {
      M.Errors.push_back(Path + ":" + std::to_string(LineNo) +
                         ": malformed layer line (want 'layer <name> : "
                         "<dir>...')");
      continue;
    }
    int Rank = static_cast<int>(M.LayerNames.size());
    M.LayerNames.push_back(Name);
    std::string Dir;
    bool Any = false;
    while (LS >> Dir) {
      Any = true;
      if (M.DirRank.count(Dir)) {
        M.Errors.push_back(Path + ":" + std::to_string(LineNo) + ": dir '" +
                           Dir + "' assigned to two layers ('" +
                           M.DirLayer[Dir] + "' and '" + Name + "')");
        continue;
      }
      M.DirRank[Dir] = Rank;
      M.DirLayer[Dir] = Name;
    }
    if (!Any)
      M.Errors.push_back(Path + ":" + std::to_string(LineNo) + ": layer '" +
                         Name + "' declares no directories");
  }
  return M;
}

void hcvliw::lint::checkLayers(const SourceFile &F, const LayerMap &Layers,
                               std::vector<Violation> &Out) {
  auto It = Layers.DirRank.find(F.Dir);
  if (It == Layers.DirRank.end())
    return; // the driver reports undeclared dirs once, not per file
  int SrcRank = It->second;

  unsigned LineNo = 0;
  for (const std::string &Line : F.RawLines) {
    ++LineNo;
    size_t Pos = Line.find("#include \"");
    if (Pos == std::string::npos)
      continue;
    size_t Start = Pos + 10;
    size_t End = Line.find('"', Start);
    if (End == std::string::npos)
      continue;
    std::string Inc = Line.substr(Start, End - Start);
    size_t Slash = Inc.find('/');
    if (Slash == std::string::npos)
      continue; // not a layered project header
    std::string TargetDir = Inc.substr(0, Slash);
    auto TIt = Layers.DirRank.find(TargetDir);
    if (TIt == Layers.DirRank.end())
      continue; // outside the declared tree (e.g. gtest/)
    if (TIt->second > SrcRank)
      Out.push_back(
          {"layer", F.RelPath, LineNo,
           "'" + F.Dir + "' (layer " + Layers.DirLayer.at(F.Dir) +
               ") includes \"" + Inc + "\" from higher layer " +
               Layers.DirLayer.at(TargetDir) +
               " — the dependency must point down the DAG (see "
               "tools/lint/layers.conf)"});
  }
}
