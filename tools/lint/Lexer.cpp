//===- tools/lint/Lexer.cpp - Minimal C++ token scanner ---------------------===//

#include "lint/Lexer.h"

#include <cctype>

using namespace hcvliw::lint;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Two-character punctuators the rules care about. `<<` / `>>` are
/// deliberately absent (see Lexer.h).
const char *TwoCharPuncts[] = {"::", "==", "!=", "<=", ">=", "->", "++",
                               "--", "+=", "-=", "*=", "/=", "%=", "&=",
                               "|=", "^=", "&&", "||"};

} // namespace

std::vector<Token> hcvliw::lint::tokenize(const std::string &Src) {
  std::vector<Token> Toks;
  unsigned Line = 1;
  size_t I = 0, N = Src.size();

  auto push = [&](Token::Kind K, std::string Text) {
    Toks.push_back({K, std::move(Text), Line});
  };

  while (I < N) {
    char C = Src[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < N && Src[I + 1] == '/') {
      while (I < N && Src[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Src[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Src[I] == '*' && Src[I + 1] == '/')) {
        if (Src[I] == '\n')
          ++Line;
        ++I;
      }
      I = (I + 1 < N) ? I + 2 : N;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (C == 'R' && I + 1 < N && Src[I + 1] == '"') {
      size_t D0 = I + 2;
      size_t Paren = Src.find('(', D0);
      if (Paren != std::string::npos) {
        std::string Close = ")" + Src.substr(D0, Paren - D0) + "\"";
        size_t End = Src.find(Close, Paren + 1);
        size_t Stop = End == std::string::npos ? N : End + Close.size();
        for (size_t J = I; J < Stop; ++J)
          if (Src[J] == '\n')
            ++Line;
        push(Token::Str, Src.substr(Paren + 1,
                                    (End == std::string::npos ? N : End) -
                                        Paren - 1));
        I = Stop;
        continue;
      }
    }
    // String / char literals (escape-aware).
    if (C == '"' || C == '\'') {
      char Quote = C;
      size_t J = I + 1;
      std::string Text;
      while (J < N && Src[J] != Quote) {
        if (Src[J] == '\\' && J + 1 < N) {
          Text += Src[J];
          ++J;
        }
        if (Src[J] == '\n')
          ++Line;
        Text += Src[J];
        ++J;
      }
      push(Quote == '"' ? Token::Str : Token::Chr, Text);
      I = J < N ? J + 1 : N;
      continue;
    }
    if (isIdentStart(C)) {
      size_t J = I;
      while (J < N && isIdentChar(Src[J]))
        ++J;
      push(Token::Ident, Src.substr(I, J - I));
      I = J;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t J = I;
      while (J < N && (isIdentChar(Src[J]) || Src[J] == '.'))
        ++J;
      push(Token::Number, Src.substr(I, J - I));
      I = J;
      continue;
    }
    // Punctuation: try the two-char table, fall back to one char.
    if (I + 1 < N) {
      std::string Two = Src.substr(I, 2);
      bool Found = false;
      for (const char *P : TwoCharPuncts)
        if (Two == P) {
          push(Token::Punct, Two);
          I += 2;
          Found = true;
          break;
        }
      if (Found)
        continue;
    }
    push(Token::Punct, std::string(1, C));
    ++I;
  }
  return Toks;
}

size_t hcvliw::lint::matchForward(const std::vector<Token> &Toks,
                                  size_t Open) {
  const std::string &O = Toks[Open].Text;
  std::string C = O == "(" ? ")" : O == "[" ? "]" : "}";
  int Depth = 0;
  for (size_t I = Open; I < Toks.size(); ++I) {
    if (Toks[I].punct(O))
      ++Depth;
    else if (Toks[I].punct(C) && --Depth == 0)
      return I;
  }
  return Toks.size();
}
