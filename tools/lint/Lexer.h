//===- tools/lint/Lexer.h - Minimal C++ token scanner ------------*- C++ -*-===//
///
/// \file
/// A deliberately small C++ tokenizer for hcvliw_lint: comments and
/// literals are recognized (so rules never fire inside them), every
/// remaining lexeme becomes an identifier, number, or punctuator token
/// with a line number. It does not preprocess: directives tokenize like
/// ordinary text, which is exactly what the rules want (an `#ifdef`'d
/// hazard is still a hazard on some configuration).
///
/// `>>` and `<<` are intentionally left as two single-character tokens
/// so template-argument depth can be tracked by counting `<` / `>`.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_TOOLS_LINT_LEXER_H
#define HCVLIW_TOOLS_LINT_LEXER_H

#include <string>
#include <string_view>
#include <vector>

namespace hcvliw {
namespace lint {

struct Token {
  enum Kind { Ident, Number, Str, Chr, Punct } K = Punct;
  std::string Text;
  unsigned Line = 1;

  bool is(Kind Kd, std::string_view T) const { return K == Kd && Text == T; }
  bool ident(std::string_view T) const { return is(Ident, T); }
  bool punct(std::string_view T) const { return is(Punct, T); }
};

/// Tokenizes \p Src. Comments vanish; string/char literals become
/// single Str/Chr tokens whose text excludes the quotes.
std::vector<Token> tokenize(const std::string &Src);

/// Index of the token matching the opener at \p Open ("(", "[", "{",
/// counting nesting), or Toks.size() when unbalanced.
size_t matchForward(const std::vector<Token> &Toks, size_t Open);

} // namespace lint
} // namespace hcvliw

#endif // HCVLIW_TOOLS_LINT_LEXER_H
