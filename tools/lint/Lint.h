//===- tools/lint/Lint.h - Invariant linter for the hcvliw tree --*- C++ -*-===//
///
/// \file
/// hcvliw_lint: a repo-specific static analyzer that makes the
/// determinism, layering, and obs-isolation contracts of this codebase
/// machine-checked instead of prose-checked. Four rule families, each
/// pinned by fixtures under tests/lint/fixtures/:
///
///   layer              #include edges across src/<dir> boundaries must
///                      point at the same or a lower layer of the DAG
///                      declared in tools/lint/layers.conf.
///   det-clock          raw std::chrono clock reads / time() / clock()
///   det-rand           std::random_device / rand() / srand()
///   det-ptr-key        std::{map,set,multimap,multiset} keyed on a
///                      pointer type (iteration order = address order)
///   det-unordered-iter range-for over an unordered_{map,set} whose
///                      body writes to non-local state (iteration order
///                      is unspecified, so the result is too)
///                      — all four only outside src/obs; audited
///                      exceptions live in tools/lint/allowlist.conf
///                      with a justification the linter prints.
///   obs-export         non-obs code calling the observability read-out
///                      surfaces (Tracer::chromeTraceJson /
///                      writeChromeTrace, MetricsRegistry::snapshot)
///   obs-branch         an if/while/switch condition mentioning obs::
///                      (no span or metric may feed a decision)
///   cache-key          a key struct whose operator== or companion hash
///                      functor does not cover every declared field
///                      (silently-incomplete cache keys break the
///                      "equal keys hash equal inputs" contract)
///   fault-site         every HCVLIW_FAULT_POINT / HCVLIW_FAULT_DEGRADE
///                      site must be a string literal, must be
///                      registered with the matching kind in
///                      src/fault/FaultSites.def, and must name exactly
///                      one code location; registered-but-unused sites
///                      are flagged too (a fault plan must never target
///                      a site that cannot fire)
///
/// The analysis is a token-level scanner plus an include graph — no
/// compiler, no types. That makes it fast and dependency-free, and the
/// rules are written to err on the side of flagging; the allowlist is
/// the escape hatch, and every entry carries its audit justification.
///
//===----------------------------------------------------------------------===//

#ifndef HCVLIW_TOOLS_LINT_LINT_H
#define HCVLIW_TOOLS_LINT_LINT_H

#include "lint/Lexer.h"

#include <map>
#include <string>
#include <vector>

namespace hcvliw {
namespace lint {

struct Violation {
  std::string Rule;    ///< e.g. "layer", "det-clock", "cache-key"
  std::string File;    ///< root-relative path
  unsigned Line = 0;
  std::string Message;
};

/// One parsed source file, shared by every rule.
struct SourceFile {
  std::string RelPath; ///< e.g. "src/sched/Schedule.cpp"
  std::string Dir;     ///< first directory under src/, e.g. "sched"
  std::vector<Token> Toks;
  std::vector<std::string> RawLines; ///< for the include scanner
};

/// The declared layer DAG: an ordered list of layers (bottom first),
/// each owning a set of src/ subdirectories. An include edge is legal
/// iff its target's layer rank <= the including file's layer rank.
struct LayerMap {
  std::vector<std::string> LayerNames;      ///< bottom -> top
  std::map<std::string, int> DirRank;       ///< src subdir -> rank
  std::map<std::string, std::string> DirLayer;
  std::vector<std::string> Errors;          ///< parse/shape problems

  static LayerMap parse(const std::string &Path);
};

/// Audited exceptions: `rule | file | needle | justification`, where
/// needle must be a substring of the violation message ("*" matches
/// any). Suppressions are printed with their justification so every
/// run restates why the exception is sound.
struct Allowlist {
  struct Entry {
    std::string Rule, File, Needle, Justification;
    unsigned Line = 0;
    bool Used = false;
  };
  std::vector<Entry> Entries;
  std::vector<std::string> Errors;

  static Allowlist parse(const std::string &Path);
  /// The matching entry (marking it used), or nullptr.
  Entry *match(const Violation &V);
};

// Rule entry points (one SourceFile at a time; append to Out).
void checkLayers(const SourceFile &F, const LayerMap &Layers,
                 std::vector<Violation> &Out);
void checkDeterminism(const SourceFile &F, std::vector<Violation> &Out);
void checkObsIsolation(const SourceFile &F, std::vector<Violation> &Out);
void checkCacheKeys(const SourceFile &F, std::vector<Violation> &Out);

/// The fault-site rule is the one cross-file family: uses are collected
/// per file during the walk, then checked in one pass against the
/// registry (uniqueness is a whole-tree property).
struct FaultSiteIndex {
  struct Use {
    std::string Site; ///< the string-literal site name ("" = non-literal)
    std::string Kind; ///< "point" or "degrade" (which macro)
    std::string File;
    unsigned Line = 0;
  };
  std::vector<Use> Uses;
};
void collectFaultSites(const SourceFile &F, FaultSiteIndex &Idx);
void checkFaultSites(const FaultSiteIndex &Idx, const std::string &Root,
                     std::vector<Violation> &Out);

struct LintOptions {
  std::string Root;          ///< tree root; scans Root/src/**
  std::string LayersConf;    ///< default Root/tools/lint/layers.conf
  std::string AllowlistConf; ///< default Root/tools/lint/allowlist.conf
};

struct LintResult {
  std::vector<Violation> Violations;      ///< survived the allowlist
  std::vector<std::string> ConfigErrors;  ///< bad conf / unreadable tree
  std::vector<std::string> Suppressed;    ///< printed with justification
  std::vector<std::string> StaleAllow;    ///< entries that matched nothing
  bool clean() const { return Violations.empty() && ConfigErrors.empty(); }
};

/// Runs every rule over Root/src/**. Deterministic: files are visited
/// in sorted path order, so output ordering is stable.
LintResult runLint(const LintOptions &Opts);

} // namespace lint
} // namespace hcvliw

#endif // HCVLIW_TOOLS_LINT_LINT_H
