//===- tools/lint/ObsIsolation.cpp - "Tracing observes only" rule -----------===//
///
/// The observability layer's contract (ROADMAP, PR 6): spans and
/// metrics *observe only* — no span output feeds back into a
/// scheduling decision, and results are bit-identical traced or
/// untraced. Two mechanical checks keep that true as the tree grows:
///
///   obs-export  non-obs src code must not call the read-out surfaces
///               (Tracer::chromeTraceJson / writeChromeTrace,
///               MetricsRegistry::snapshot). Tools and benches export
///               after the run; library code never looks.
///   obs-branch  no if/while/switch condition may mention obs:: —
///               branching on an observability value is exactly the
///               feedback the contract forbids.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <set>

using namespace hcvliw::lint;

namespace {

const std::set<std::string> ExportSurfaces = {"chromeTraceJson",
                                              "writeChromeTrace", "snapshot"};
const std::set<std::string> BranchKeywords = {"if", "while", "switch"};

} // namespace

void hcvliw::lint::checkObsIsolation(const SourceFile &F,
                                     std::vector<Violation> &Out) {
  if (F.Dir == "obs")
    return; // the layer may of course implement its own surfaces
  const std::vector<Token> &Toks = F.Toks;

  for (size_t I = 0; I + 1 < Toks.size(); ++I) {
    const Token &T = Toks[I];
    if (T.K != Token::Ident)
      continue;

    if (ExportSurfaces.count(T.Text) && Toks[I + 1].punct("(")) {
      Out.push_back({"obs-export", F.RelPath, T.Line,
                     "call to observability read-out '" + T.Text +
                         "' outside src/obs — only tools and benches export; "
                         "library results never read observation state"});
      continue;
    }

    if (BranchKeywords.count(T.Text) && Toks[I + 1].punct("(")) {
      size_t Close = matchForward(Toks, I + 1);
      for (size_t J = I + 2; J + 1 < Close; ++J)
        if (Toks[J].ident("obs") && Toks[J + 1].punct("::")) {
          Out.push_back(
              {"obs-branch", F.RelPath, Toks[J].Line,
               "condition branches on an obs:: value — no span or metric "
               "output may feed back into a decision (the traced==untraced "
               "bit-identity contract)"});
          break;
        }
    }
  }
}
