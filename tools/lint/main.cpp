//===- tools/lint/main.cpp - hcvliw_lint CLI --------------------------------===//
///
/// Usage: hcvliw_lint --root <tree> [--layers <conf>] [--allowlist <conf>]
///
/// Exit 0: tree is clean (suppressions, if any, are printed with their
///         justification — an audit trail, not noise).
/// Exit 1: violations.
/// Exit 2: configuration errors (bad conf file, undeclared src dir,
///         unusable root). Stale allowlist entries are warnings only.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <cstdio>
#include <cstring>

using namespace hcvliw::lint;

int main(int Argc, char **Argv) {
  LintOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    auto need = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "hcvliw_lint: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (!std::strcmp(Argv[I], "--root"))
      Opts.Root = need("--root");
    else if (!std::strcmp(Argv[I], "--layers"))
      Opts.LayersConf = need("--layers");
    else if (!std::strcmp(Argv[I], "--allowlist"))
      Opts.AllowlistConf = need("--allowlist");
    else if (!std::strcmp(Argv[I], "--help") || !std::strcmp(Argv[I], "-h")) {
      std::printf(
          "usage: hcvliw_lint --root <tree> [--layers <conf>] "
          "[--allowlist <conf>]\n\n"
          "Checks the invariant contracts of the hcvliw tree: the layer\n"
          "DAG (tools/lint/layers.conf), determinism hazards, obs\n"
          "isolation, and cache-key completeness. See README \"Static\n"
          "analysis\".\n");
      return 0;
    } else {
      std::fprintf(stderr, "hcvliw_lint: unknown argument '%s'\n", Argv[I]);
      return 2;
    }
  }
  if (Opts.Root.empty()) {
    std::fprintf(stderr, "hcvliw_lint: --root is required\n");
    return 2;
  }

  LintResult R = runLint(Opts);

  for (const std::string &E : R.ConfigErrors)
    std::fprintf(stderr, "hcvliw_lint: config error: %s\n", E.c_str());
  for (const std::string &S : R.Suppressed)
    std::printf("note: %s\n", S.c_str());
  for (const std::string &S : R.StaleAllow)
    std::fprintf(stderr, "warning: %s\n", S.c_str());
  for (const Violation &V : R.Violations)
    std::fprintf(stderr, "%s:%u: [%s] %s\n", V.File.c_str(), V.Line,
                 V.Rule.c_str(), V.Message.c_str());

  if (!R.ConfigErrors.empty())
    return 2;
  if (!R.Violations.empty()) {
    std::fprintf(stderr,
                 "hcvliw_lint: %zu violation(s). Audited exceptions go in "
                 "tools/lint/allowlist.conf with a justification.\n",
                 R.Violations.size());
    return 1;
  }
  std::printf("hcvliw_lint: clean\n");
  return 0;
}
