#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over every
# library and analyzer TU, diff the findings against the committed
# baseline, and fail on anything new.
#
#   tools/lint/run_clang_tidy.sh [build-dir]
#
# The build dir must contain compile_commands.json (the root CMakeLists
# sets CMAKE_EXPORT_COMPILE_COMMANDS unconditionally). A finding is
# fingerprinted as "file:check" — line numbers churn too much to pin.
# Accepted findings live in tools/lint/clang-tidy.baseline; shrink it
# whenever you can, grow it only with a review.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD="${1:-$ROOT/build}"
BASELINE="$ROOT/tools/lint/clang-tidy.baseline"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found on PATH" >&2
  echo "run_clang_tidy: install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi
if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in $BUILD (configure first)" >&2
  exit 2
fi

mapfile -t TUS < <(cd "$ROOT" && find src tools/lint -name '*.cpp' | sort)

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
STATUS=0
"$TIDY" -p "$BUILD" --quiet "${TUS[@]/#/$ROOT/}" >"$RAW" 2>/dev/null || STATUS=$?
if [ "$STATUS" -ge 124 ]; then # crash/signal, as opposed to "found issues"
  echo "run_clang_tidy: clang-tidy exited with status $STATUS" >&2
  exit 2
fi

# "path/file.cpp:12:3: warning: ... [check-name]"  ->  "path/file.cpp:check-name"
NEW="$(grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' "$RAW" \
  | sed -E "s|^$ROOT/||" \
  | sed -E 's|^([^:]+):[0-9]+:[0-9]+: [a-z]+: .*\[([a-z0-9.,-]+)\]$|\1:\2|' \
  | sort -u)"
KNOWN="$(grep -v -e '^#' -e '^[[:space:]]*$' "$BASELINE" 2>/dev/null | sort -u || true)"

FRESH="$(comm -23 <(printf '%s\n' "$NEW" | sed '/^$/d') \
                  <(printf '%s\n' "$KNOWN" | sed '/^$/d'))"
FIXED="$(comm -13 <(printf '%s\n' "$NEW" | sed '/^$/d') \
                  <(printf '%s\n' "$KNOWN" | sed '/^$/d'))"

if [ -n "$FIXED" ]; then
  echo "run_clang_tidy: baseline entries no longer firing (remove them):"
  printf '  %s\n' $FIXED
fi
if [ -n "$FRESH" ]; then
  echo "run_clang_tidy: NEW findings (fix, or baseline with review):"
  printf '  %s\n' $FRESH
  echo "--- full clang-tidy output for the new findings ---"
  while IFS= read -r FP; do
    FILE="${FP%%:*}" CHECK="${FP##*:}"
    grep -F "$FILE" "$RAW" | grep -F "[$CHECK]" || true
  done <<<"$FRESH"
  exit 1
fi
echo "run_clang_tidy: clean ($(printf '%s\n' "$NEW" | sed '/^$/d' | wc -l) baselined)"
